package lint_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"repro/internal/lint"
)

// The matcher keys on package-path suffixes (internal/prog, internal/obs),
// so the tests typecheck stand-in packages under test/internal/... rather
// than importing the real IR.
const progStub = `package prog
type Ins struct{ Op int }
type Block struct {
	Insts []Ins
	Next  *Block
}
`

const obsStub = `package obs
type Observer interface {
	Count(name string, n int64)
}
`

const coreStub = `package core
import "test/internal/prog"
type ProfileArtifact struct {
	Name   string
	Phases []int
}
func (a *ProfileArtifact) Hash() (uint64, error)    { return 0, nil }
func (a *ProfileArtifact) EncodeJSON(w int) error   { return nil }
func ImageHash(b *prog.Block) uint64                { return 0 }
`

type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m[path]; ok {
		return pkg, nil
	}
	return nil, fmt.Errorf("no stub for import %q", path)
}

// check typechecks src as a package with the given import path (against
// the prog/obs stubs) and runs Analyze over it.
func check(t *testing.T, path, src string) []lint.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	deps := mapImporter{}
	compile := func(p, s string, info *types.Info) (*types.Package, []*ast.File) {
		f, err := parser.ParseFile(fset, p+"/a.go", s, 0)
		if err != nil {
			t.Fatalf("parse %s: %v", p, err)
		}
		conf := types.Config{Importer: deps}
		pkg, err := conf.Check(p, fset, []*ast.File{f}, info)
		if err != nil {
			t.Fatalf("typecheck %s: %v", p, err)
		}
		deps[p] = pkg
		return pkg, []*ast.File{f}
	}
	compile("test/internal/prog", progStub, nil)
	compile("test/internal/obs", obsStub, nil)
	compile("test/internal/core", coreStub, nil)

	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	_, files := compile(path, src, info)
	return lint.Analyze(fset, files, info, path)
}

func rules(diags []lint.Diagnostic) []string {
	var rs []string
	for _, d := range diags {
		rs = append(rs, d.Rule)
	}
	return rs
}

func TestInstsMutationFlagged(t *testing.T) {
	src := `package client
import "test/internal/prog"
func rewrite(b *prog.Block) {
	b.Insts = nil                                // direct assign
	b.Insts[0] = prog.Ins{}                      // element assign
	b.Next.Insts = append(b.Next.Insts, prog.Ins{}) // rebuild through a chain
}
func read(b *prog.Block) int { return len(b.Insts) } // reads are fine
`
	diags := check(t, "test/internal/client", src)
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics (%v), want 3", len(diags), rules(diags))
	}
	for _, d := range diags {
		if d.Rule != "lint/insts-mutation" {
			t.Errorf("rule = %q, want lint/insts-mutation", d.Rule)
		}
	}
}

func TestInstsMutationAllowedInOwners(t *testing.T) {
	src := `package opt
import "test/internal/prog"
func Rewrite(b *prog.Block) { b.Insts = nil }
`
	for _, owner := range []string{"test/internal/prog2/internal/opt", "test/internal/opt", "test/internal/pack"} {
		if diags := check(t, owner, src); len(diags) != 0 {
			t.Errorf("%s: got %v, want none", owner, rules(diags))
		}
	}
}

func TestInstsMutationIgnoresOtherFields(t *testing.T) {
	src := `package client
import "test/internal/prog"
type fake struct{ Insts []int }
func ok(b *prog.Block, f *fake) {
	b.Next = nil   // other Block fields are fair game
	f.Insts = nil  // Insts on a non-Block type
}
`
	if diags := check(t, "test/internal/client", src); len(diags) != 0 {
		t.Errorf("got %v, want none", rules(diags))
	}
}

func TestDroppedObserverFlagged(t *testing.T) {
	src := `package client
import "test/internal/obs"
func drop(o obs.Observer) {}                        // flagged
func forward(o obs.Observer) { o.Count("x", 1) }    // used directly
func relay(o obs.Observer) { forward(o) }           // passed along
func blank(_ obs.Observer) {}                       // explicit drop
func shadow(o obs.Observer) {                       // only a shadow is used
	o2 := func(o obs.Observer) { o.Count("y", 1) }
	_ = o2
}
`
	diags := check(t, "test/internal/client", src)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics (%v), want 2 (drop, shadow)", len(diags), rules(diags))
	}
	for _, d := range diags {
		if d.Rule != "lint/dropped-observer" {
			t.Errorf("rule = %q, want lint/dropped-observer", d.Rule)
		}
	}
}

func TestMutateAfterHashFlagged(t *testing.T) {
	src := `package client
import "test/internal/core"
func build(a *core.ProfileArtifact) uint64 {
	a.Phases = append(a.Phases, 1) // before the hash: fine
	h, _ := a.Hash()
	a.Name = "x"    // flagged: field write after Hash
	a.Phases[0] = 2 // flagged: element write after Hash
	return h
}
func encode(a *core.ProfileArtifact) {
	_ = a.EncodeJSON(0)
	a.Name = "y" // flagged: serialized bytes no longer match
}
`
	diags := check(t, "test/internal/client", src)
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics (%v), want 3", len(diags), rules(diags))
	}
	for _, d := range diags {
		if d.Rule != "lint/mutate-after-hash" {
			t.Errorf("rule = %q, want lint/mutate-after-hash", d.Rule)
		}
	}
}

func TestMutateAfterHashFreeFunction(t *testing.T) {
	src := `package client
import (
	"test/internal/core"
	"test/internal/prog"
)
func image(b *prog.Block) {
	_ = core.ImageHash(b)
	b.Next = nil // flagged: the image hash no longer describes b
}
`
	diags := check(t, "test/internal/client", src)
	if len(diags) != 1 || diags[0].Rule != "lint/mutate-after-hash" {
		t.Fatalf("got %v, want one lint/mutate-after-hash", rules(diags))
	}
}

func TestMutateAfterHashAllowed(t *testing.T) {
	src := `package client
import "test/internal/core"
func rebind(a *core.ProfileArtifact) {
	_, _ = a.Hash()
	a = &core.ProfileArtifact{} // rebinding leaves the hashed value intact
	_ = a
}
func hashLast(a *core.ProfileArtifact) uint64 {
	a.Name = "x"
	h, _ := a.Hash()
	return h
}
func otherVar(a, b *core.ProfileArtifact) {
	_, _ = a.Hash()
	b.Name = "y" // a different value entirely
}
type plain struct{ Name string }
func (p *plain) Hash() int { return 0 }
func nonArtifact(p *plain) {
	_ = p.Hash()
	p.Name = "z" // not a hashed-package type
}
`
	if diags := check(t, "test/internal/client", src); len(diags) != 0 {
		t.Errorf("got %v, want none", rules(diags))
	}
}
