package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/workload"
)

// buildInput synthesizes one benchmark input at the test scale.
func buildInput(t *testing.T, bench, input string) (*workload.Benchmark, workload.Input) {
	t.Helper()
	b, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	in, err := b.InputByName(input)
	if err != nil {
		t.Fatal(err)
	}
	in.Scale = 1
	return b, in
}

// normalizedTrace renders a recorder's trace with wall-clock fields
// zeroed, so two equivalent runs compare byte-identical.
func normalizedTrace(t *testing.T, rec *obs.Recorder) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.Export().Normalize().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStagedResumability is the stage-resumability contract: running the
// pipeline stage by stage, serializing every intermediate artifact to
// JSON and reloading it before the next stage, must produce the same
// packed program — and the same observer trace — as the straight-through
// Run, with the verifier gating every stage.
func TestStagedResumability(t *testing.T) {
	for _, bench := range []string{"m88ksim", "perl"} {
		t.Run(bench, func(t *testing.T) {
			cfg := ScaledConfig()
			cfg.Verify = true
			b, in := buildInput(t, bench, "A")

			// Straight through, observed.
			recA := obs.NewRecorder()
			pA := b.Build(in)
			outA, err := RunObserved(cfg, pA, recA)
			if err != nil {
				t.Fatalf("straight run: %v", err)
			}

			// Staged, with a JSON round trip at every stage boundary,
			// composed exactly as RunObserved composes the stages.
			recB := obs.NewRecorder()
			pB := b.Build(in)
			sp := recB.StartSpan(obs.StagePipeline)
			img, err := pB.Linearize()
			if err != nil {
				t.Fatal(err)
			}
			pa, err := ProfileStageObserved(cfg, img, nil, recB)
			if err != nil {
				t.Fatalf("profile stage: %v", err)
			}
			pa = roundTripProfile(t, pa)
			ra, err := RegionStageObserved(cfg, img, pa, recB)
			if err != nil {
				t.Fatalf("region stage: %v", err)
			}
			ra = roundTripRegion(t, ra)
			set, err := PackageStageObserved(cfg, pB, img, ra, recB)
			if err != nil {
				t.Fatalf("package stage: %v", err)
			}
			sp.End()

			// Same packed image, bit for bit.
			imgA, err := outA.Packed.Linearize()
			if err != nil {
				t.Fatal(err)
			}
			imgB, err := pB.Linearize()
			if err != nil {
				t.Fatal(err)
			}
			if ImageHash(imgA) != ImageHash(imgB) {
				t.Fatalf("packed image %016x (staged) != %016x (straight)", ImageHash(imgB), ImageHash(imgA))
			}

			// Same package statistics.
			res := set.Result()
			if len(res.Packages) != len(outA.Pack.Packages) || res.Links != outA.Pack.Links ||
				res.AddedInsts != outA.Pack.AddedInsts || res.SelectedInsts != outA.Pack.SelectedInsts {
				t.Fatalf("staged result %+v differs from straight %+v", set.Stats, outA.Pack)
			}
			if set.SkippedPhases != outA.SkippedPhases {
				t.Fatalf("staged skipped %d phases, straight %d", set.SkippedPhases, outA.SkippedPhases)
			}

			// Same observer trace, byte for byte.
			ta, tb := normalizedTrace(t, recA), normalizedTrace(t, recB)
			if !bytes.Equal(ta, tb) {
				t.Fatalf("staged trace differs from straight run trace:\n--- straight ---\n%s\n--- staged ---\n%s", ta, tb)
			}

			// The staged packed program still runs equivalently.
			outB := &Outcome{Original: b.Build(in), Packed: pB, DB: pa.DB(), Pack: res}
			ev, err := outB.Evaluate(cpu.DefaultConfig(), 0)
			if err != nil {
				t.Fatal(err)
			}
			if !ev.Equivalent {
				t.Fatal("resumed packed program diverges from the original")
			}
		})
	}
}

func roundTripProfile(t *testing.T, pa *ProfileArtifact) *ProfileArtifact {
	t.Helper()
	h1, err := pa.Hash()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pa.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeProfileArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := got.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("profile artifact hash changed across the round trip: %016x -> %016x", h1, h2)
	}
	return got
}

func roundTripRegion(t *testing.T, ra *RegionArtifact) *RegionArtifact {
	t.Helper()
	h1, err := ra.Hash()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ra.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRegionArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := got.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("region artifact hash changed across the round trip: %016x -> %016x", h1, h2)
	}
	return got
}

// TestPackageSetRoundTrip closes the loop on stage 3's artifact: the
// encoded set reassembles to the packed image and keeps its hash.
func TestPackageSetRoundTrip(t *testing.T) {
	cfg := ScaledConfig()
	b, in := buildInput(t, "m88ksim", "A")
	p := b.Build(in)
	out, err := Run(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	img, err := out.Packed.Linearize()
	if err != nil {
		t.Fatal(err)
	}

	set := newPackageSet(out.Packed, out.Pack, 0, 0)
	h1, err := set.Hash()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePackageSet(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := got.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("package set hash changed across the round trip: %016x -> %016x", h1, h2)
	}
	if got.PackedHash != ImageHash(img) {
		t.Fatalf("decoded PackedHash %016x, packed image %016x", got.PackedHash, ImageHash(img))
	}
	rebuilt, err := got.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	rimg, err := rebuilt.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	if ImageHash(rimg) != got.PackedHash {
		t.Fatalf("reassembled image %016x, PackedHash %016x", ImageHash(rimg), got.PackedHash)
	}
}

// TestStagedStaleness proves every stage rejects artifacts from a
// different build with ErrStaleArtifact.
func TestStagedStaleness(t *testing.T) {
	cfg := ScaledConfig()
	b1, in1 := buildInput(t, "m88ksim", "A")
	b2, in2 := buildInput(t, "perl", "A")
	p1, p2 := b1.Build(in1), b2.Build(in2)
	img1, err := p1.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	img2, err := p2.Linearize()
	if err != nil {
		t.Fatal(err)
	}

	pa, err := ProfileStage(cfg, img1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RegionStage(cfg, img2, pa); !errors.Is(err, ErrStaleArtifact) {
		t.Fatalf("RegionStage on foreign image: %v, want ErrStaleArtifact", err)
	}
	ra, err := RegionStage(cfg, img1, pa)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PackageStage(cfg, p2, img2, ra); !errors.Is(err, ErrStaleArtifact) {
		t.Fatalf("PackageStage on foreign image: %v, want ErrStaleArtifact", err)
	}
	if _, err := ra.Regions(p2, img2); !errors.Is(err, ErrStaleArtifact) {
		t.Fatalf("Regions on foreign image: %v, want ErrStaleArtifact", err)
	}
}
