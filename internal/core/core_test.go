package core

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/workload"
)

// runPipeline executes the full pipeline on one workload input.
func runPipeline(t *testing.T, bench, input string, cfg Config) (*Outcome, *Evaluation) {
	t.Helper()
	b, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	in, err := b.InputByName(input)
	if err != nil {
		t.Fatal(err)
	}
	in.Scale = 1 // keep tests fast regardless of the input's default scale
	p := b.Build(in)
	if err := p.Verify(); err != nil {
		t.Fatalf("workload program invalid: %v", err)
	}
	out, err := Run(cfg, p)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	ev, err := out.Evaluate(cpu.DefaultConfig(), 0)
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	return out, ev
}

func TestPipelineEndToEndPerl(t *testing.T) {
	out, ev := runPipeline(t, "perl", "A", ScaledConfig())
	if out.Detections == 0 {
		t.Fatal("no hot spots detected")
	}
	if len(out.DB.Phases) < 2 {
		t.Errorf("phases = %d, want >= 2 (perl has three command mixes)", len(out.DB.Phases))
	}
	if len(out.Pack.Packages) == 0 {
		t.Fatal("no packages built")
	}
	if !ev.Equivalent {
		t.Fatal("packed program is not functionally equivalent to the original")
	}
	if ev.Coverage < 0.4 {
		t.Errorf("coverage = %.3f, suspiciously low", ev.Coverage)
	}
	t.Logf("perl/A: %d phases, %d packages, %d links, coverage %.1f%%, speedup %.3f",
		len(out.DB.Phases), len(out.Pack.Packages), out.Pack.Links, ev.Coverage*100, ev.Speedup)
}

func TestPipelineEquivalenceAcrossSuite(t *testing.T) {
	for _, b := range workload.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			out, ev := runPipeline(t, b.Name, "A", ScaledConfig())
			if !ev.Equivalent {
				t.Fatalf("%s: packed program diverges from original", b.Name)
			}
			if err := out.Packed.Verify(); err != nil {
				t.Fatalf("%s: packed program invalid: %v", b.Name, err)
			}
			t.Logf("%s: coverage %.1f%% speedup %.3f growth %.1f%%",
				b.Name, ev.Coverage*100, ev.Speedup, out.Pack.CodeGrowth()*100)
		})
	}
}

func TestVariantsAffectPipeline(t *testing.T) {
	vs := Variants()
	if len(vs) != 4 {
		t.Fatal("want 4 variants")
	}
	names := map[string]bool{}
	for _, v := range vs {
		names[v.Name()] = true
		cfg := v.Apply(ScaledConfig())
		if cfg.Region.EnableInference != v.Inference || cfg.Pack.EnableLinking != v.Linking {
			t.Error("variant did not apply")
		}
	}
	if len(names) != 4 {
		t.Error("variant names collide")
	}
}

func TestLinkingImprovesSharedRootCoverage(t *testing.T) {
	// m88ksim's two phases share the simulate root; without linking only
	// one phase's package is reachable through the shared launch point.
	cfgNoLink := Variant{Inference: true, Linking: false}.Apply(ScaledConfig())
	cfgLink := Variant{Inference: true, Linking: true}.Apply(ScaledConfig())
	_, evNo := runPipeline(t, "m88ksim", "A", cfgNoLink)
	outLink, evLink := runPipeline(t, "m88ksim", "A", cfgLink)
	if outLink.Pack.Links == 0 {
		t.Fatal("linking enabled but no links were formed")
	}
	if evLink.Coverage <= evNo.Coverage {
		t.Errorf("linking should improve m88ksim coverage: %.3f (link) vs %.3f (none)",
			evLink.Coverage, evNo.Coverage)
	}
	t.Logf("m88ksim coverage: no-link %.1f%%, link %.1f%%", evNo.Coverage*100, evLink.Coverage*100)
}

// Sinking (§5.4's future-work redundancy elimination) must preserve
// functional equivalence end to end.
func TestSinkEndToEndEquivalence(t *testing.T) {
	cfg := ScaledConfig()
	cfg.EnableSink = true
	out, ev := runPipeline(t, "gzip", "A", cfg)
	if !ev.Equivalent {
		t.Fatal("sinking broke functional equivalence")
	}
	if err := out.Packed.Verify(); err != nil {
		t.Fatal(err)
	}
	t.Logf("gzip with sinking: coverage %.1f%%, speedup %.3f", ev.Coverage*100, ev.Speedup)
}

// The hardware history filter must reduce recorded detections without
// losing phases. vortex's phases differ in branch membership, the case
// signature filtering handles well (bias-only phase changes are its
// documented blind spot — see hsd/history.go).
func TestHistoryFilterEndToEnd(t *testing.T) {
	plain := ScaledConfig()
	outPlain, _ := runPipeline(t, "vortex", "A", plain)

	hist := ScaledConfig()
	hist.HistoryDepth = 4
	outHist, evHist := runPipeline(t, "vortex", "A", hist)
	if !evHist.Equivalent {
		t.Fatal("history filter broke equivalence")
	}
	if len(outHist.DB.Phases) < 2 {
		t.Errorf("history filter lost phases: %d", len(outHist.DB.Phases))
	}
	if outHist.DB.Redundant >= outPlain.DB.Redundant {
		t.Errorf("history filter did not reduce software-filter load: %d vs %d",
			outHist.DB.Redundant, outPlain.DB.Redundant)
	}
	t.Logf("redundant software-filtered detections: %d plain vs %d with history",
		outPlain.DB.Redundant, outHist.DB.Redundant)
}

// Dynamic launch-point selection (§3.3.4's alternative to static linking)
// must recover most of linking's coverage on the shared-root benchmark and
// stay functionally equivalent.
func TestDynamicLaunchEndToEnd(t *testing.T) {
	noLink := Variant{Inference: true, Linking: false}.Apply(ScaledConfig())
	_, evNo := runPipeline(t, "m88ksim", "A", noLink)

	dyn := ScaledConfig()
	dyn.Pack.EnableLinking = false
	dyn.Pack.DynamicLaunch = true
	outDyn, evDyn := runPipeline(t, "m88ksim", "A", dyn)
	if !evDyn.Equivalent {
		t.Fatal("dynamic launch broke functional equivalence")
	}
	if outDyn.Pack.Monitors == 0 {
		t.Fatal("no monitoring snippets were installed")
	}
	if evDyn.Coverage <= evNo.Coverage {
		t.Errorf("dynamic launch should beat no-linking: %.1f%% vs %.1f%%",
			evDyn.Coverage*100, evNo.Coverage*100)
	}
	link := Variant{Inference: true, Linking: true}.Apply(ScaledConfig())
	_, evLink := runPipeline(t, "m88ksim", "A", link)
	t.Logf("m88ksim coverage: none %.1f%%, dynamic %.1f%%, static links %.1f%%",
		evNo.Coverage*100, evDyn.Coverage*100, evLink.Coverage*100)
}

// The approximate weight solver must keep the pipeline correct and produce
// comparable layouts.
func TestApproxWeightsEndToEnd(t *testing.T) {
	cfg := ScaledConfig()
	cfg.ApproxWeights = true
	_, ev := runPipeline(t, "ijpeg", "A", cfg)
	if !ev.Equivalent {
		t.Fatal("approx weights broke equivalence")
	}
	if ev.Speedup < 0.97 {
		t.Errorf("approx-weight layout regressed badly: %.3f", ev.Speedup)
	}
}

// The paper credits part of packaging's benefit to instruction locality:
// hot code scattered across a large binary gets gathered into compact
// packages. This test builds exactly that shape — three hot workers
// separated by kilobytes of cold library code — and checks the packed
// image takes fewer L1I misses per instruction on a cache-constrained
// machine. (The calibrated suite's generator lays workers out adjacently,
// so the scatter must be constructed explicitly; on already-compact
// layouts, replication can even cost a few misses — the growth tradeoff
// §1 warns about.)
func TestPackingImprovesICacheLocality(t *testing.T) {
	w := workload.NewW()
	arr := w.NewArray(256)
	arr2 := w.NewArray(256)

	// Workers with strongly biased diamonds: ~half of each worker's bytes
	// are cold sides interleaved with the hot path, diluting every fetch
	// line the way hot/cold-mixed compiler layouts do. Packing prunes the
	// cold sides, roughly doubling instruction density.
	biased := func() []workload.Param {
		var ds []workload.Param
		for i := 0; i < 6; i++ {
			ds = append(ds, w.NewParam(975))
		}
		return ds
	}
	mkBulk := func(prefix string) { w.Bulk(prefix, 14, 500, arr, 256) }
	mkBulk("scatterA")
	w1 := w.Worker("hot1", workload.FuncOpts{
		Decisions: biased(),
		ArrayA:    arr, ArrayB: arr2, ArrayWords: 256, ALUWork: 8,
		IterParam: w.NewParam(2),
	})
	mkBulk("scatterB")
	w2 := w.Worker("hot2", workload.FuncOpts{
		Decisions: biased(),
		ArrayA:    arr2, ArrayB: arr, ArrayWords: 256, ALUWork: 8,
		IterParam: w.NewParam(2),
	})
	mkBulk("scatterC")
	w3 := w.Worker("hot3", workload.FuncOpts{
		Decisions: biased(),
		ArrayA:    arr, ArrayB: arr2, ArrayWords: 256, ALUWork: 8,
		IterParam: w.NewParam(2),
	})
	mkBulk("scatterD")
	always := w.NewParam(1000)
	drvIt := w.NewParam(0)
	drv := w.Worker("hotdrv", workload.FuncOpts{
		ArrayA: arr, ArrayB: arr2, ArrayWords: 256, ALUWork: 1,
		Callees: []workload.Callee{
			{Fn: w1, Gate: always}, {Fn: w2, Gate: always}, {Fn: w3, Gate: always},
		},
		IterParam: drvIt,
	})
	steps := w.DriverBurst(drvIt, 2400, drv)
	w.MainOf([][]workload.PhaseStep{steps})
	p := w.Finish(12345)

	out, err := Run(ScaledConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	mc := cpu.DefaultConfig()
	mc.L1ISizeBytes = 2 << 10 // the undiluted hot path fits; the diluted one thrashes
	ev, err := out.Evaluate(mc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Equivalent {
		t.Fatal("diverged")
	}
	baseRate := float64(ev.Base.L1IMisses) / float64(ev.Base.Insts)
	packedRate := float64(ev.Packed.L1IMisses) / float64(ev.Packed.Insts)
	t.Logf("scattered hot code, L1I misses/inst @2KB: base %.5f vs packed %.5f (coverage %.1f%%, speedup %.3f)",
		baseRate, packedRate, ev.Coverage*100, ev.Speedup)
	if packedRate >= baseRate {
		t.Errorf("packing scattered hot code should improve I-cache locality: %.5f -> %.5f",
			baseRate, packedRate)
	}
}

// TestProfileKey pins the memo-key contract: the four evaluation variants
// share one key (their differences are packaging-only), profiling knobs
// change it, and packaging/optimization knobs do not.
func TestProfileKey(t *testing.T) {
	base := ScaledConfig()
	key := base.ProfileKey()
	if key != base.ProfileKey() {
		t.Fatal("ProfileKey is not deterministic")
	}
	for _, v := range Variants() {
		if got := v.Apply(base).ProfileKey(); got != key {
			t.Errorf("variant %q changed the profile key", v.Name())
		}
	}

	same := base
	same.EnableLayout = !same.EnableLayout
	same.EnableSchedule = !same.EnableSchedule
	same.MaxPhases = 3
	same.Region.EnableInference = !same.Region.EnableInference
	same.Pack.EnableLinking = !same.Pack.EnableLinking
	if same.ProfileKey() != key {
		t.Error("packaging/optimization knobs must not change the profile key")
	}

	for name, mutate := range map[string]func(*Config){
		"detector":     func(c *Config) { c.Detector.CandidateThreshold++ },
		"filter":       func(c *Config) { c.Filter.DifferenceThreshold += 0.01 },
		"history":      func(c *Config) { c.HistoryDepth++ },
		"similarity":   func(c *Config) { c.HistorySimilarity += 0.1 },
		"profilelimit": func(c *Config) { c.ProfileLimit = 12345 },
	} {
		cfg := base
		mutate(&cfg)
		if cfg.ProfileKey() == key {
			t.Errorf("%s change did not alter the profile key", name)
		}
	}
}
