// Package core orchestrates the full Vacuum Packing pipeline: it profiles a
// program under the Hot Spot Detector, filters detections into unique
// phases, identifies a hot region per phase, extracts and links packages,
// optimizes them (layout + rescheduling), and hands back both the pristine
// original and the packed program for evaluation.
package core

import (
	"fmt"
	"sort"

	"repro/internal/cpu"
	"repro/internal/hsd"
	"repro/internal/opt"
	"repro/internal/pack"
	"repro/internal/phasedb"
	"repro/internal/prog"
	"repro/internal/region"
)

// Config gathers every pipeline knob. The zero value is not useful; start
// from DefaultConfig.
type Config struct {
	Detector hsd.Config
	Filter   phasedb.Config
	Region   region.Config
	Pack     pack.Config
	Sched    opt.Resources

	// EnableLayout and EnableSchedule control the §5.4 optimization passes
	// applied to package code. EnableSink additionally applies the
	// redundancy-elimination pass §5.4 describes as future work: cold
	// results move off the hot path into side exit blocks. ApproxWeights
	// swaps the damped iterative weight solver for the single-pass
	// approximation §5.4 suggests for run-time systems.
	// EnableMerge fuses single-entry fallthrough chains inside packages
	// before the other passes, realizing §5.4's increased block scope from
	// cold-path elimination.
	EnableLayout   bool
	EnableSchedule bool
	EnableMerge    bool
	EnableSink     bool
	ApproxWeights  bool

	// HistoryDepth, when positive, interposes the §3.1 hardware history
	// filter (hot-spot signatures) between the detector and the software
	// filter, suppressing re-detections of the last HistoryDepth hot
	// spots at HistorySimilarity Jaccard similarity. The paper's default
	// pushes all filtering to software (depth 0).
	HistoryDepth      int
	HistorySimilarity float64

	// MaxPhases caps how many detected phases are packaged (most heavily
	// detected first); 0 means all.
	MaxPhases int
	// ProfileLimit bounds the profiling run's instruction count
	// (0 = unlimited).
	ProfileLimit uint64
	// EntrySeedWeight seeds weight propagation at package entries.
	EntrySeedWeight float64
}

// DefaultConfig returns the paper's configuration: Table 2 detector,
// §3.1 filter thresholds, §3.2 region parameters, linking on, layout and
// rescheduling on.
func DefaultConfig() Config {
	return Config{
		Detector:        hsd.DefaultConfig(),
		Filter:          phasedb.DefaultConfig(),
		Region:          region.DefaultConfig(),
		Pack:            pack.DefaultConfig(),
		Sched:           opt.DefaultResources(),
		EnableLayout:    true,
		EnableSchedule:  true,
		EnableMerge:     true,
		EntrySeedWeight: 1000,
	}
}

// ScaledConfig returns DefaultConfig with the workload-scaled Hot Spot
// Detector (hsd.ScaledConfig). The evaluation suite uses this
// configuration; see DESIGN.md for the scaling substitution rationale.
func ScaledConfig() Config {
	cfg := DefaultConfig()
	cfg.Detector = hsd.ScaledConfig()
	return cfg
}

// Variant names one of the paper's four evaluation configurations
// (Figures 8 and 10): {inference off/on} × {linking off/on}.
type Variant struct {
	Inference bool
	Linking   bool
}

// Variants lists the four bars of Figures 8 and 10 in paper order.
func Variants() []Variant {
	return []Variant{
		{Inference: false, Linking: false},
		{Inference: false, Linking: true},
		{Inference: true, Linking: false},
		{Inference: true, Linking: true},
	}
}

// Name renders a variant like the paper's legend.
func (v Variant) Name() string {
	s := "no inference"
	if v.Inference {
		s = "inference"
	}
	if v.Linking {
		return s + " + linking"
	}
	return s + ", no linking"
}

// Apply returns cfg specialized to the variant.
func (v Variant) Apply(cfg Config) Config {
	cfg.Region.EnableInference = v.Inference
	cfg.Pack.EnableLinking = v.Linking
	return cfg
}

// Outcome is the result of running the pipeline on one program.
type Outcome struct {
	// Original is a pristine clone of the input program; Packed is the
	// input program with packages installed.
	Original *prog.Program
	Packed   *prog.Program

	DB      *phasedb.DB
	Regions []*region.Region
	Pack    *pack.Result

	// ProfileStats summarizes the profiling run.
	ProfileInsts    uint64
	ProfileBranches uint64
	Detections      uint64
	// SkippedPhases counts phases whose region identification failed
	// (e.g. all hot-spot PCs were unmappable).
	SkippedPhases int
}

// ProfileStats summarizes one profiling run.
type ProfileStats struct {
	Insts      uint64
	Branches   uint64
	Detections uint64
	// DataHash/DataStores fingerprint the run's data-segment effects for
	// functional-equivalence checks against packed runs.
	DataHash   uint64
	DataStores uint64
}

// Profile runs the program to completion under the Hot Spot Detector
// (§3.1) and returns the filtered phase database. obs, when non-nil,
// receives every retired instruction — the benchmark harness uses it to
// collect baseline timing in the same pass.
func Profile(cfg Config, img *prog.Image, obs func(*cpu.StepInfo)) (*phasedb.DB, ProfileStats, error) {
	db := phasedb.New(cfg.Filter)
	record := func(h hsd.HotSpot) { db.Record(h) }
	if cfg.HistoryDepth > 0 {
		sim := cfg.HistorySimilarity
		if sim == 0 {
			sim = 0.8
		}
		record = hsd.NewHistoryFilter(cfg.HistoryDepth, sim).WrapDetector(record)
	}
	det := hsd.New(cfg.Detector, record)
	m := cpu.NewMachine(img)
	err := m.Run(cfg.ProfileLimit, func(si *cpu.StepInfo) {
		if si.Inst.Op.IsCondBranch() {
			det.SetInstCount(m.InstCount)
			det.Branch(si.PC, si.Taken)
		}
		if obs != nil {
			obs(si)
		}
	})
	st := ProfileStats{
		Insts:      m.InstCount,
		Branches:   det.Stats.BranchesSeen,
		Detections: det.Stats.Detections,
	}
	st.DataHash, st.DataStores = m.DataHash()
	if err != nil {
		return nil, st, fmt.Errorf("core: profiling run: %w", err)
	}
	return db, st, nil
}

// Run executes the full pipeline on p. p is mutated into the packed
// program; the returned Outcome carries a pristine clone for baselines.
func Run(cfg Config, p *prog.Program) (*Outcome, error) {
	out := &Outcome{Original: p.Clone(), Packed: p}

	img, err := p.Linearize()
	if err != nil {
		return nil, fmt.Errorf("core: linearize: %w", err)
	}
	db, st, err := Profile(cfg, img, nil)
	if err != nil {
		return nil, err
	}
	out.DB = db
	out.ProfileInsts = st.Insts
	out.ProfileBranches = st.Branches
	out.Detections = st.Detections
	if err := Package(cfg, out, p, img, db); err != nil {
		return out, err
	}
	return out, nil
}

// Package applies region identification, package construction and
// optimization to p (mutating it) from an existing phase database. The
// database's PCs must have been gathered on an image that linearizes
// identically to p — a Clone of the profiled program qualifies.
func Package(cfg Config, out *Outcome, p *prog.Program, img *prog.Image, db *phasedb.DB) error {
	// Step 2: region identification per unique phase (§3.2).
	phases := append([]*phasedb.Phase(nil), db.Phases...)
	sort.SliceStable(phases, func(i, j int) bool {
		return phases[i].Detections > phases[j].Detections
	})
	if cfg.MaxPhases > 0 && len(phases) > cfg.MaxPhases {
		phases = phases[:cfg.MaxPhases]
	}
	regByPhase := make(map[int]*region.Region)
	for _, ph := range phases {
		r, err := region.Identify(cfg.Region, img, ph)
		if err != nil {
			out.SkippedPhases++
			continue
		}
		out.Regions = append(out.Regions, r)
		regByPhase[ph.ID] = r
	}
	if len(out.Regions) == 0 {
		return fmt.Errorf("core: no usable phases detected (%d phases, %d skipped)", len(db.Phases), out.SkippedPhases)
	}

	// Step 3: package construction (§3.3).
	var pkgs []*pack.Package
	for _, r := range out.Regions {
		ps, err := pack.BuildPhase(cfg.Pack, p, r)
		if err != nil {
			out.SkippedPhases++
			continue
		}
		pkgs = append(pkgs, ps...)
	}
	if len(pkgs) == 0 {
		return fmt.Errorf("core: no packages constructed")
	}
	res, err := pack.Install(cfg.Pack, p, pkgs)
	if err != nil {
		return err
	}
	out.Pack = res

	// Optimization (§5.4): weight calculation, relayout, rescheduling.
	for _, pk := range res.Packages {
		r := regByPhase[pk.PhaseID]
		if r == nil {
			continue
		}
		prob := opt.ProbFromRegion(r)
		if cfg.EnableMerge {
			opt.MergeBlocks(p, pk.Fn)
		}
		if cfg.EnableSink {
			opt.SinkColdCode(pk.Fn)
		}
		if cfg.EnableLayout {
			seed := make(map[*prog.Block]float64)
			for _, c := range pk.Entries {
				seed[c] = cfg.EntrySeedWeight
			}
			if e := pk.Fn.Entry(); e != nil && len(seed) == 0 {
				seed[e] = cfg.EntrySeedWeight
			}
			w := opt.WeightsFor(cfg.ApproxWeights, pk.Fn, prob, seed)
			opt.Layout(pk.Fn, w, prob)
		}
		if cfg.EnableSchedule {
			opt.Schedule(pk.Fn, cfg.Sched)
		}
	}

	if err := p.Verify(); err != nil {
		return fmt.Errorf("core: packed program invalid: %w", err)
	}
	return nil
}

// Evaluation is a timed comparison of the original and packed programs.
type Evaluation struct {
	Base   cpu.TimingStats
	Packed cpu.TimingStats
	// Coverage is the fraction of the packed run's dynamic instructions
	// retired from package code (Figure 8's metric).
	Coverage float64
	// Speedup is base cycles / packed cycles (Figure 10's metric).
	Speedup float64
	// Equivalent reports whether both runs produced identical
	// data-segment effects.
	Equivalent bool
}

// Evaluate times both programs to completion under the machine model and
// checks functional equivalence. limit bounds each run (0 = unlimited).
func (o *Outcome) Evaluate(mc cpu.Config, limit uint64) (*Evaluation, error) {
	baseImg, err := o.Original.Linearize()
	if err != nil {
		return nil, fmt.Errorf("core: linearize original: %w", err)
	}
	packedImg, err := o.Packed.Linearize()
	if err != nil {
		return nil, fmt.Errorf("core: linearize packed: %w", err)
	}
	baseStats, baseM, err := cpu.RunTimed(mc, baseImg, limit)
	if err != nil {
		return nil, fmt.Errorf("core: base run: %w", err)
	}
	packedStats, packedM, err := cpu.RunTimed(mc, packedImg, limit)
	if err != nil {
		return nil, fmt.Errorf("core: packed run: %w", err)
	}
	bh, bn := baseM.DataHash()
	ph, pn := packedM.DataHash()
	ev := &Evaluation{
		Base:       baseStats,
		Packed:     packedStats,
		Coverage:   packedStats.PackageCoverage(),
		Equivalent: bh == ph && bn == pn,
	}
	if packedStats.Cycles > 0 {
		ev.Speedup = float64(baseStats.Cycles) / float64(packedStats.Cycles)
	}
	return ev, nil
}
