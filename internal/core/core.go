// Package core orchestrates the full Vacuum Packing pipeline: it profiles a
// program under the Hot Spot Detector, filters detections into unique
// phases, identifies a hot region per phase, extracts and links packages,
// optimizes them (layout + rescheduling), and hands back both the pristine
// original and the packed program for evaluation.
package core

import (
	"errors"
	"fmt"
	"hash/fnv"

	"repro/internal/cpu"
	"repro/internal/equiv"
	"repro/internal/hsd"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/pack"
	"repro/internal/phasedb"
	"repro/internal/prog"
	"repro/internal/region"
	"repro/internal/verify"
)

// Sentinel pipeline failures. They are always wrapped with detail via %w,
// so match them with errors.Is rather than string comparison.
var (
	// ErrNoPhases reports that region identification left no usable
	// phase: either the profile detected none, or every detected phase
	// was skipped.
	ErrNoPhases = errors.New("no usable phases detected")
	// ErrNoPackages reports that package construction failed for every
	// identified region.
	ErrNoPackages = errors.New("no packages constructed")
	// ErrVerifyFailed reports that the static verifier (Config.Verify)
	// rejected a pipeline stage's output. The wrapped chain contains a
	// *verify.Error with the structured diagnostics.
	ErrVerifyFailed = verify.ErrFailed
	// ErrNotEquivalent reports that translation validation (Config.Equiv)
	// refuted a package: the optimized code is not observationally
	// equivalent to the region code it replaced. The wrapped chain
	// contains an *equiv.Error with the structured counterexample.
	ErrNotEquivalent = equiv.ErrNotEquivalent
)

// Config gathers every pipeline knob. The zero value is not useful; start
// from DefaultConfig.
type Config struct {
	Detector hsd.Config
	Filter   phasedb.Config
	Region   region.Config
	Pack     pack.Config
	Sched    opt.Resources

	// EnableLayout and EnableSchedule control the §5.4 optimization passes
	// applied to package code. EnableSink additionally applies the
	// redundancy-elimination pass §5.4 describes as future work: cold
	// results move off the hot path into side exit blocks. ApproxWeights
	// swaps the damped iterative weight solver for the single-pass
	// approximation §5.4 suggests for run-time systems.
	// EnableMerge fuses single-entry fallthrough chains inside packages
	// before the other passes, realizing §5.4's increased block scope from
	// cold-path elimination.
	EnableLayout   bool
	EnableSchedule bool
	EnableMerge    bool
	EnableSink     bool
	ApproxWeights  bool

	// HistoryDepth, when positive, interposes the §3.1 hardware history
	// filter (hot-spot signatures) between the detector and the software
	// filter, suppressing re-detections of the last HistoryDepth hot
	// spots at HistorySimilarity Jaccard similarity. The paper's default
	// pushes all filtering to software (depth 0).
	HistoryDepth      int
	HistorySimilarity float64

	// MaxPhases caps how many detected phases are packaged (most heavily
	// detected first); 0 means all.
	MaxPhases int
	// ProfileLimit bounds the profiling run's instruction count
	// (0 = unlimited).
	ProfileLimit uint64
	// EntrySeedWeight seeds weight propagation at package entries.
	EntrySeedWeight float64

	// Verify gates every pipeline stage on the static verifier
	// (internal/verify): regions are checked against their phase records,
	// installation against the package invariants, and each optimization
	// pass against CFG well-formedness, with transformation certificates
	// re-checked after the last pass. Off by default; a violation fails
	// the pipeline with an ErrVerifyFailed-matchable error. Enabled runs
	// bump the verify.checked / verify.violations counters.
	Verify bool

	// Equiv gates every optimized package on translation validation
	// (internal/equiv): the package function is snapshotted after
	// installation and linking, and after the optimization passes each
	// acyclic path must produce identical observable effects — live-out
	// register terms, memory write chains, side-exit targets — or the
	// pipeline fails with an ErrNotEquivalent-matchable error carrying a
	// structured counterexample. Certificates land on the Outcome and the
	// PackageSet artifact. Off by default. EquivMaxPaths bounds symbolic
	// path enumeration per package (0 = the equiv package default); past
	// it the proof degrades to bounded differential execution.
	Equiv         bool
	EquivMaxPaths int
}

// DefaultConfig returns the paper's configuration: Table 2 detector,
// §3.1 filter thresholds, §3.2 region parameters, linking on, layout and
// rescheduling on.
func DefaultConfig() Config {
	return Config{
		Detector:        hsd.DefaultConfig(),
		Filter:          phasedb.DefaultConfig(),
		Region:          region.DefaultConfig(),
		Pack:            pack.DefaultConfig(),
		Sched:           opt.DefaultResources(),
		EnableLayout:    true,
		EnableSchedule:  true,
		EnableMerge:     true,
		EntrySeedWeight: 1000,
	}
}

// ProfileKey returns a canonical hash of the profiling-relevant
// sub-configuration: the Hot Spot Detector, the software filter, the
// hardware history filter and the profiling instruction limit. Two
// configs with equal keys produce identical profiling runs (phase
// database, profile stats, baseline timing) on the same image, so the
// result can be shared read-only across them — the paper's four
// evaluation variants only differ in Region/Pack knobs and therefore all
// map to one key. Packaging, optimization and evaluation knobs
// deliberately do not participate.
func (cfg Config) ProfileKey() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", struct {
		Detector          hsd.Config
		Filter            phasedb.Config
		HistoryDepth      int
		HistorySimilarity float64
		ProfileLimit      uint64
	}{cfg.Detector, cfg.Filter, cfg.HistoryDepth, cfg.HistorySimilarity, cfg.ProfileLimit})
	return h.Sum64()
}

// Hash returns a canonical hash of the complete configuration — every
// knob that can change any pipeline artifact. It extends ProfileKey with
// the region, packaging, optimization and phase-cap knobs, so it is the
// second half of the store's package-set key: two configs with equal
// Hash produce byte-identical RegionArtifacts and PackageSets on the
// same image. The Verify gate and the Pack.Verify hook deliberately do
// not participate: verification rejects bad outputs but never changes
// good ones, and func identities are not configuration. The Equiv knobs
// DO participate — equiv runs embed certificates in the PackageSet, so a
// warm store hit from a non-equiv run must miss when -equiv turns on.
func (cfg Config) Hash() uint64 {
	h := fnv.New64a()
	pk := cfg.Pack
	pk.Verify = nil
	fmt.Fprintf(h, "%+v", struct {
		Detector          hsd.Config
		Filter            phasedb.Config
		Region            region.Config
		Pack              pack.Config
		Sched             opt.Resources
		EnableLayout      bool
		EnableSchedule    bool
		EnableMerge       bool
		EnableSink        bool
		ApproxWeights     bool
		HistoryDepth      int
		HistorySimilarity float64
		MaxPhases         int
		ProfileLimit      uint64
		EntrySeedWeight   float64
		Equiv             bool
		EquivMaxPaths     int
	}{
		cfg.Detector, cfg.Filter, cfg.Region, pk, cfg.Sched,
		cfg.EnableLayout, cfg.EnableSchedule, cfg.EnableMerge,
		cfg.EnableSink, cfg.ApproxWeights,
		cfg.HistoryDepth, cfg.HistorySimilarity,
		cfg.MaxPhases, cfg.ProfileLimit, cfg.EntrySeedWeight,
		cfg.Equiv, cfg.EquivMaxPaths,
	})
	return h.Sum64()
}

// ScaledConfig returns DefaultConfig with the workload-scaled Hot Spot
// Detector (hsd.ScaledConfig). The evaluation suite uses this
// configuration; see DESIGN.md for the scaling substitution rationale.
func ScaledConfig() Config {
	cfg := DefaultConfig()
	cfg.Detector = hsd.ScaledConfig()
	return cfg
}

// Variant names one of the paper's four evaluation configurations
// (Figures 8 and 10): {inference off/on} × {linking off/on}.
type Variant struct {
	Inference bool
	Linking   bool
}

// Variants lists the four bars of Figures 8 and 10 in paper order.
func Variants() []Variant {
	return []Variant{
		{Inference: false, Linking: false},
		{Inference: false, Linking: true},
		{Inference: true, Linking: false},
		{Inference: true, Linking: true},
	}
}

// Name renders a variant like the paper's legend.
func (v Variant) Name() string {
	s := "no inference"
	if v.Inference {
		s = "inference"
	}
	if v.Linking {
		return s + " + linking"
	}
	return s + ", no linking"
}

// Apply returns cfg specialized to the variant.
func (v Variant) Apply(cfg Config) Config {
	cfg.Region.EnableInference = v.Inference
	cfg.Pack.EnableLinking = v.Linking
	return cfg
}

// Outcome is the result of running the pipeline on one program.
type Outcome struct {
	// Original is a pristine clone of the input program; Packed is the
	// input program with packages installed.
	Original *prog.Program
	Packed   *prog.Program

	DB      *phasedb.DB
	Regions []*region.Region
	Pack    *pack.Result

	// ProfileStats summarizes the profiling run.
	ProfileInsts    uint64
	ProfileBranches uint64
	Detections      uint64
	// SkippedPhases counts phases whose region identification failed
	// (e.g. all hot-spot PCs were unmappable).
	SkippedPhases int

	// Equiv holds the per-package translation-validation certificates when
	// Config.Equiv is on, in package order.
	Equiv []*equiv.Certificate
}

// ProfileStats summarizes one profiling run. The JSON tags are the
// ProfileArtifact codec's: counters that can exceed 2^53 travel as
// strings so the round trip is exact.
type ProfileStats struct {
	Insts      uint64 `json:"insts,string"`
	Branches   uint64 `json:"branches,string"`
	Detections uint64 `json:"detections,string"`
	// DataHash/DataStores fingerprint the run's data-segment effects for
	// functional-equivalence checks against packed runs.
	DataHash   uint64 `json:"data_hash,string"`
	DataStores uint64 `json:"data_stores,string"`
}

// Profile runs the program to completion under the Hot Spot Detector
// (§3.1) and returns the filtered phase database. obs, when non-nil,
// receives every retired instruction — the benchmark harness uses it to
// collect baseline timing in the same pass.
func Profile(cfg Config, img *prog.Image, obsFn func(*cpu.StepInfo)) (*phasedb.DB, ProfileStats, error) {
	return ProfileObserved(cfg, img, obsFn, obs.Nop{})
}

// ProfileObserved is Profile reporting to an observer: the run executes
// inside a "profile" span, every unique phase emits a PhaseDetected event
// and every software-filtered (redundant) detection a PhaseFiltered
// event, and the profile.* counters summarize the run.
func ProfileObserved(cfg Config, img *prog.Image, obsFn func(*cpu.StepInfo), o obs.Observer) (*phasedb.DB, ProfileStats, error) {
	sp := o.StartSpan(obs.StageProfile)
	defer sp.End()
	db := phasedb.New(cfg.Filter)
	record := func(h hsd.HotSpot) { db.Record(h) }
	if o.Enabled() {
		record = func(h hsd.HotSpot) {
			before := len(db.Phases)
			ph := db.Record(h)
			kind := obs.PhaseDetected
			if len(db.Phases) == before {
				kind = obs.PhaseFiltered
			}
			o.Emit(obs.Event{Kind: kind, Phase: ph.ID, N: 1})
		}
	}
	if cfg.HistoryDepth > 0 {
		sim := cfg.HistorySimilarity
		if sim == 0 {
			sim = 0.8
		}
		record = hsd.NewHistoryFilter(cfg.HistoryDepth, sim).WrapDetector(record)
	}
	det := hsd.New(cfg.Detector, record)
	m := cpu.NewMachine(img)
	err := m.Run(cfg.ProfileLimit, func(si *cpu.StepInfo) {
		if si.Inst.Op.IsCondBranch() {
			det.SetInstCount(m.InstCount)
			det.Branch(si.PC, si.Taken)
		}
		if obsFn != nil {
			obsFn(si)
		}
	})
	st := ProfileStats{
		Insts:      m.InstCount,
		Branches:   det.Stats.BranchesSeen,
		Detections: det.Stats.Detections,
	}
	st.DataHash, st.DataStores = m.DataHash()
	o.Count("profile.insts", int64(st.Insts))
	o.Count("profile.branches", int64(st.Branches))
	o.Count("profile.detections", int64(st.Detections))
	o.Count("profile.phases", int64(len(db.Phases)))
	o.Count("profile.redundant", int64(db.Redundant))
	if err != nil {
		return nil, st, fmt.Errorf("core: profiling run: %w", err)
	}
	return db, st, nil
}

// Run executes the full pipeline on p. p is mutated into the packed
// program; the returned Outcome carries a pristine clone for baselines.
// It is a thin no-op-observer wrapper around RunObserved.
func Run(cfg Config, p *prog.Program) (*Outcome, error) {
	return RunObserved(cfg, p, obs.Nop{})
}

// RunObserved is Run reporting spans, events and metrics for every stage
// to an observer. Pass obs.Nop{} (or call Run) when observability is off;
// the disabled path adds no allocations.
//
// It is a thin composition over the staged pipeline API: ProfileStage →
// RegionStage → PackageStage, with the intermediate artifacts folded into
// the Outcome. The observer stream is byte-identical to the pre-staged
// monolithic flow.
func RunObserved(cfg Config, p *prog.Program, o obs.Observer) (*Outcome, error) {
	sp := o.StartSpan(obs.StagePipeline)
	defer sp.End()
	out := &Outcome{Original: p.Clone(), Packed: p}

	img, err := p.Linearize()
	if err != nil {
		return nil, fmt.Errorf("core: linearize: %w", err)
	}
	pa, err := ProfileStageObserved(cfg, img, nil, o)
	if err != nil {
		return nil, err
	}
	out.DB = pa.DB()
	out.ProfileInsts = pa.Stats.Insts
	out.ProfileBranches = pa.Stats.Branches
	out.Detections = pa.Stats.Detections
	if err := packageStaged(cfg, out, p, img, pa, o); err != nil {
		return out, err
	}
	return out, nil
}

// Package applies region identification, package construction and
// optimization to p (mutating it) from an existing phase database. The
// database's PCs must have been gathered on an image that linearizes
// identically to p — a Clone of the profiled program qualifies.
func Package(cfg Config, out *Outcome, p *prog.Program, img *prog.Image, db *phasedb.DB) error {
	return PackageObserved(cfg, out, p, img, db, obs.Nop{})
}

// passes translates the configuration's optimization knobs into the opt
// package's pass selection.
func (cfg Config) passes() opt.Passes {
	return opt.Passes{
		Merge:           cfg.EnableMerge,
		Sink:            cfg.EnableSink,
		Layout:          cfg.EnableLayout,
		Schedule:        cfg.EnableSchedule,
		Approx:          cfg.ApproxWeights,
		Sched:           cfg.Sched,
		EntrySeedWeight: cfg.EntrySeedWeight,
	}
}

// PackageObserved is Package reporting to an observer: the filter, region,
// package, link and optimize stages each run inside their span, and
// skipped phases emit PhaseSkipped events carrying the reason.
//
// It composes RegionStageObserved and PackageStageObserved over a
// profile artifact wrapped around db, stamped with img's hash so the
// stages' staleness checks pass by construction.
func PackageObserved(cfg Config, out *Outcome, p *prog.Program, img *prog.Image, db *phasedb.DB, o obs.Observer) error {
	pa := &ProfileArtifact{
		Schema:      ProfileArtifactSchema,
		ProgramHash: ImageHash(img),
		ProfileKey:  cfg.ProfileKey(),
		db:          db,
	}
	return packageStaged(cfg, out, p, img, pa, o)
}

// verifyCheck accounts one verifier invocation on the observer and passes
// its error through: verify.checked counts invocations, verify.violations
// counts individual diagnostics.
func verifyCheck(o obs.Observer, err error) error {
	o.Count("verify.checked", 1)
	if err == nil {
		return nil
	}
	o.Count("verify.violations", int64(len(verify.Diagnostics(err))))
	return err
}

// Evaluation is a timed comparison of the original and packed programs.
type Evaluation struct {
	Base   cpu.TimingStats
	Packed cpu.TimingStats
	// Coverage is the fraction of the packed run's dynamic instructions
	// retired from package code (Figure 8's metric).
	Coverage float64
	// Speedup is base cycles / packed cycles (Figure 10's metric).
	Speedup float64
	// Equivalent reports whether both runs produced identical
	// data-segment effects.
	Equivalent bool
}

// Evaluate times both programs to completion under the machine model and
// checks functional equivalence. limit bounds each run (0 = unlimited).
func (o *Outcome) Evaluate(mc cpu.Config, limit uint64) (*Evaluation, error) {
	return o.EvaluateObserved(mc, limit, obs.Nop{})
}

// EvaluateObserved is Evaluate inside an "evaluate" span, recording the
// eval.* counters and the eval.speedup / eval.coverage gauges.
func (o *Outcome) EvaluateObserved(mc cpu.Config, limit uint64, ob obs.Observer) (*Evaluation, error) {
	sp := ob.StartSpan(obs.StageEvaluate)
	defer sp.End()
	baseImg, err := o.Original.Linearize()
	if err != nil {
		return nil, fmt.Errorf("core: linearize original: %w", err)
	}
	packedImg, err := o.Packed.Linearize()
	if err != nil {
		return nil, fmt.Errorf("core: linearize packed: %w", err)
	}
	baseStats, baseM, err := cpu.RunTimed(mc, baseImg, limit)
	if err != nil {
		return nil, fmt.Errorf("core: base run: %w", err)
	}
	var bc *cpu.BlockCache
	if !mc.DisableBlockCache && limit == 0 {
		bc = cpu.NewBlockCache(packedImg)
	}
	packedStats, packedM, err := cpu.RunTimedCached(mc, packedImg, limit, bc)
	if err != nil {
		return nil, fmt.Errorf("core: packed run: %w", err)
	}
	bh, bn := baseM.DataHash()
	ph, pn := packedM.DataHash()
	ev := &Evaluation{
		Base:       baseStats,
		Packed:     packedStats,
		Coverage:   packedStats.PackageCoverage(),
		Equivalent: bh == ph && bn == pn,
	}
	if packedStats.Cycles > 0 {
		ev.Speedup = float64(baseStats.Cycles) / float64(packedStats.Cycles)
	}
	ob.Count("eval.base_cycles", int64(baseStats.Cycles))
	ob.Count("eval.packed_cycles", int64(packedStats.Cycles))
	if bc != nil {
		ob.Count(obs.BlockCacheHitsCounter, int64(bc.Stats.Hits+bc.Stats.Chained))
		ob.Count(obs.BlockCacheMissesCounter, int64(bc.Stats.Misses))
		ob.Count(obs.BlockCacheEvictionsCounter, int64(bc.Stats.Evicted))
		ob.Count(obs.SuperblockPromotedCounter, int64(bc.SB.Promoted))
		ob.Count(obs.SuperblockDemotedCounter, int64(bc.SB.Demoted))
		ob.Count(obs.SuperblockSideExitsCounter, int64(bc.SB.SideExits))
		ob.Count(obs.SuperblockChainedCounter, int64(bc.SB.ChainedInsts))
	}
	ob.Gauge("eval.speedup", ev.Speedup)
	ob.Gauge("eval.coverage", ev.Coverage)
	ob.Observe("eval.cycles", float64(packedStats.Cycles))
	return ev, nil
}
