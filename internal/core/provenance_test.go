package core

import (
	"bytes"
	"strings"
	"testing"
)

func testProvenance() *Provenance {
	return &Provenance{
		Schema:        ProvenanceSchema,
		Program:       "m88ksim",
		Version:       3,
		Trace:         "rpk-00003",
		ProgramHash:   0xdeadbeefcafe0001,
		ProfileHash:   0x1111,
		RegionHash:    0x2222,
		PackageHash:   0x3333,
		Records:       250,
		Ingests:       []IngestRef{{Trace: "ing-00000001", Records: 10}, {Trace: "ing-00000002", Records: 15}},
		IngestsTotal:  25,
		DriftScore:    0.42,
		DriftBaseline: 2,
		QueueWaitUS:   120,
		BuildUS:       34567,
		Spans:         []SpanSummary{{Name: "region_stage", US: 12000}, {Name: "package_stage", US: 20000}},
	}
}

func TestProvenanceRoundTrip(t *testing.T) {
	p := testProvenance()
	var buf bytes.Buffer
	if err := p.EncodeJSON(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	// Hashes >2^53 travel as strings, like every other artifact.
	if !strings.Contains(buf.String(), `"program_hash": "16045690984503050241"`) {
		t.Fatalf("program_hash not string-encoded:\n%s", buf.String())
	}
	got, err := DecodeProvenance(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Trace != p.Trace || got.Version != p.Version || got.ProgramHash != p.ProgramHash {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if len(got.Ingests) != 2 || got.Ingests[1].Trace != "ing-00000002" {
		t.Fatalf("ingest chain lost: %+v", got.Ingests)
	}
	if got.DriftScore != p.DriftScore || got.QueueWaitUS != p.QueueWaitUS {
		t.Fatalf("drift/wait lost: %+v", got)
	}
}

func TestProvenanceHashStable(t *testing.T) {
	h1, err := testProvenance().Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := testProvenance().Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 || h1 == 0 {
		t.Fatalf("hashes %016x, %016x not stable and nonzero", h1, h2)
	}
	changed := testProvenance()
	changed.DriftScore = 0.43
	h3, err := changed.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("hash insensitive to content change")
	}
}

func TestDecodeProvenanceRejectsSchema(t *testing.T) {
	if _, err := DecodeProvenance(strings.NewReader(`{"schema":"vpartifact/other/v1"}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
}
