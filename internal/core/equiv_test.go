package core

import (
	"errors"
	"testing"

	"repro/internal/equiv"
	"repro/internal/workload"
)

// TestEquivSuiteClean is the translation-validation property test: with
// the -equiv gate on, every package the pipeline builds across the whole
// workload suite must be proved observationally equivalent to its region
// code — zero violations on a clean pipeline — and the fuzz-fallback
// fraction is reported.
func TestEquivSuiteClean(t *testing.T) {
	totalPkgs, fuzzed, proved := 0, 0, 0
	for _, b := range workload.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			cfg := ScaledConfig()
			cfg.Equiv = true
			out, _ := runPipeline(t, b.Name, "A", cfg)
			if len(out.Equiv) == 0 {
				t.Fatalf("%s: equiv run produced no certificates", b.Name)
			}
			for _, c := range out.Equiv {
				totalPkgs++
				proved += c.PathsProved
				if c.BudgetExceeded {
					fuzzed++
				}
				if !c.Equivalent {
					t.Errorf("%s: %s", b.Name, c.Verdict())
				}
				if !c.BudgetExceeded && c.PathsProved == 0 {
					t.Errorf("%s: %s proved no paths without exceeding budget", b.Name, c.Package)
				}
			}
		})
	}
	if totalPkgs > 0 {
		t.Logf("equiv suite: %d packages, %d paths proved, fuzz-fallback fraction %.1f%% (%d/%d)",
			totalPkgs, proved, 100*float64(fuzzed)/float64(totalPkgs), fuzzed, totalPkgs)
	}
}

// TestEquivKnobsChangeConfigHash locks the store-keying contract: the
// equiv knobs participate in Config.Hash (certificates land in the
// PackageSet, so a warm store entry from a non-equiv run must not be
// served to an equiv run), and do not participate in ProfileKey
// (profiling is unaffected).
func TestEquivKnobsChangeConfigHash(t *testing.T) {
	base := ScaledConfig()
	on := base
	on.Equiv = true
	if base.Hash() == on.Hash() {
		t.Error("Config.Hash ignores Equiv")
	}
	budget := on
	budget.EquivMaxPaths = 7
	if on.Hash() == budget.Hash() {
		t.Error("Config.Hash ignores EquivMaxPaths")
	}
	if base.ProfileKey() != on.ProfileKey() || base.ProfileKey() != budget.ProfileKey() {
		t.Error("ProfileKey must not depend on equiv knobs")
	}
}

// TestEquivErrSentinel checks the core re-export matches equiv errors.
func TestEquivErrSentinel(t *testing.T) {
	err := &equiv.Error{Package: "p"}
	if !errors.Is(err, ErrNotEquivalent) {
		t.Error("equiv.Error does not match core.ErrNotEquivalent")
	}
}
