package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cpu"
	"repro/internal/prog"
	"repro/internal/workload"
)

// randomProgram builds a structurally random phased program with the
// workload DSL: a random worker forest with random decisions, guards,
// gates and phase scripts. Termination is guaranteed by construction
// (worker loops count down), so every generated program is a valid
// pipeline input.
func randomProgram(r *rand.Rand) *prog.Program {
	w := workload.NewW()
	arr := w.NewArray(256)
	arr2 := w.NewArray(256)

	// A layered worker forest: layer-N workers may call layer-(N+1) ones,
	// so the call graph is acyclic (recursion is covered by its own unit
	// tests; random recursion depths make run time unpredictable).
	nLeaves := 1 + r.Intn(3)
	leaves := make([]workload.Callee, 0, nLeaves)
	for i := 0; i < nLeaves; i++ {
		var ds []workload.Param
		for d := 0; d < 1+r.Intn(3); d++ {
			ds = append(ds, w.NewParam(int64(r.Intn(1001))))
		}
		opts := workload.FuncOpts{
			Decisions: ds,
			ArrayA:    arr, ArrayB: arr2, ArrayWords: 256,
			ALUWork:   r.Intn(3),
			FP:        r.Intn(4) == 0,
			IterParam: w.NewParam(int64(1 + r.Intn(3))),
		}
		if r.Intn(2) == 0 {
			opts.Guards = 1 + r.Intn(6)
			opts.GuardProb = w.NewParam(int64(r.Intn(40)))
		}
		fn := w.Worker(fmt.Sprintf("leaf%d", i), opts)
		leaves = append(leaves, workload.Callee{Fn: fn, Gate: w.NewParam(int64(r.Intn(1001)))})
	}
	nMids := 1 + r.Intn(2)
	gates := make([]workload.Param, 0, nMids)
	mids := make([]workload.Callee, 0, nMids)
	for i := 0; i < nMids; i++ {
		var calls []workload.Callee
		for _, l := range leaves {
			if r.Intn(2) == 0 {
				calls = append(calls, l)
			}
		}
		fn := w.Worker(fmt.Sprintf("mid%d", i), workload.FuncOpts{
			Decisions: []workload.Param{w.NewParam(int64(r.Intn(1001)))},
			ArrayA:    arr2, ArrayB: arr, ArrayWords: 256,
			ALUWork:   1,
			Callees:   calls,
			IterParam: w.NewParam(int64(1 + r.Intn(3))),
		})
		g := w.NewParam(0)
		gates = append(gates, g)
		mids = append(mids, workload.Callee{Fn: fn, Gate: g})
	}
	drvIt := w.NewParam(0)
	drv := w.Worker("drv", workload.FuncOpts{
		ArrayA: arr, ArrayB: arr2, ArrayWords: 256, ALUWork: 1,
		Callees:   mids,
		IterParam: drvIt,
	})

	nPhases := 1 + r.Intn(3)
	script := make([][]workload.PhaseStep, 0, nPhases)
	for p := 0; p < nPhases; p++ {
		var steps []workload.PhaseStep
		for _, g := range gates {
			steps = append(steps, workload.SetP(g, int64(r.Intn(1001))))
		}
		steps = append(steps, w.DriverBurst(drvIt, int64(200+r.Intn(600)), drv)...)
		script = append(script, steps)
	}
	w.MainOf(script)
	return w.Finish(int64(r.Uint64()>>1) | 1)
}

// TestRandomProgramsThroughPipeline is the repository's broadest property
// test: structurally random programs must (a) verify, (b) run, and (c)
// remain functionally equivalent after packaging, for every variant. Runs
// that detect no usable phases (legitimately possible for degenerate
// random structures) are skipped, not failed.
func TestRandomProgramsThroughPipeline(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 3
	}
	packed := 0
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(1000 + trial)))
		p := randomProgram(r)
		if err := p.Verify(); err != nil {
			t.Fatalf("trial %d: generated program invalid: %v", trial, err)
		}
		v := Variants()[trial%4]
		out, err := Run(v.Apply(ScaledConfig()), p)
		if err != nil {
			t.Logf("trial %d (%s): pipeline declined: %v", trial, v.Name(), err)
			continue
		}
		ev, err := out.Evaluate(cpu.DefaultConfig(), 80_000_000)
		if err != nil {
			t.Fatalf("trial %d: evaluate: %v", trial, err)
		}
		if !ev.Equivalent {
			t.Fatalf("trial %d (%s): random program diverged after packaging", trial, v.Name())
		}
		if err := out.Packed.Verify(); err != nil {
			t.Fatalf("trial %d: packed program invalid: %v", trial, err)
		}
		packed++
	}
	if packed == 0 {
		t.Fatal("no random program was packable; generator is too degenerate")
	}
	t.Logf("packed and verified %d/%d random programs", packed, trials)
}
