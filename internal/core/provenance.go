// Provenance: the request-scoped build record the daemon attaches to
// every published PackageSet version. Where the artifact chain
// (ProfileArtifact -> RegionArtifact -> PackageSet) links stages by
// content hash, provenance links a *published version* back to the
// operational events that produced it: which ingest traces contributed
// profile records, how long the shard waited in the repack queue, how
// long each pipeline stage ran, and how far the live stream had drifted
// from the previous baseline at the moment the snapshot was taken.
package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// ProvenanceSchema marks the provenance codec version.
const ProvenanceSchema = "vpartifact/provenance/v1"

// IngestRef identifies one contributing profile POST by its trace ID.
type IngestRef struct {
	// Trace is the ingest's request-scoped trace ID (client-supplied
	// Vpackd-Trace header or daemon-assigned).
	Trace string `json:"trace"`
	// Records is how many hot-spot records the ingest carried.
	Records int `json:"records"`
}

// SpanSummary is one timed step of the build.
type SpanSummary struct {
	Name string `json:"name"`
	US   int64  `json:"us"`
}

// Provenance records how one published package-set version came to be.
type Provenance struct {
	Schema  string `json:"schema"`
	Program string `json:"program"`
	// Version is the 1-based published version this record describes.
	Version int `json:"version"`
	// Trace is the repack's own trace ID; the Ingests' trace IDs chain the
	// record back to the client requests whose profile data it packaged.
	Trace string `json:"trace"`

	// The artifact chain by content hash: the program image the profile
	// was taken on, the profile/region artifacts the build consumed and
	// produced, and the published PackageSet itself.
	ProgramHash uint64 `json:"program_hash,string"`
	ProfileHash uint64 `json:"profile_hash,string"`
	RegionHash  uint64 `json:"region_hash,string"`
	PackageHash uint64 `json:"package_hash,string"`

	// Records is the accumulated profile depth behind the snapshot;
	// Ingests lists the most recent contributing ingests (capped by the
	// producer), IngestsTotal the full count since the prior version.
	Records      int64       `json:"records"`
	Ingests      []IngestRef `json:"ingests,omitempty"`
	IngestsTotal int64       `json:"ingests_total"`

	// DriftScore is the composite drift score at snapshot time, measured
	// against DriftBaseline (the version the previous baseline came from;
	// 0 = this was the first build or drift tracking is disabled).
	DriftScore    float64 `json:"drift_score"`
	DriftBaseline int     `json:"drift_baseline"`

	// QueueWaitUS is enqueue-to-worker-pickup; BuildUS the full repack
	// wall time; Spans the timed pipeline steps inside it.
	QueueWaitUS int64         `json:"queue_wait_us"`
	BuildUS     int64         `json:"build_us"`
	Spans       []SpanSummary `json:"spans,omitempty"`
}

// Hash returns the record's content hash (FNV-1a over canonical JSON).
func (p *Provenance) Hash() (uint64, error) {
	return jsonHash(p)
}

// EncodeJSON writes the record's canonical JSON form.
func (p *Provenance) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(p)
}

// DecodeProvenance reads a record previously written by EncodeJSON.
func DecodeProvenance(r io.Reader) (*Provenance, error) {
	var p Provenance
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("core: decode provenance: %w", err)
	}
	if p.Schema != ProvenanceSchema {
		return nil, fmt.Errorf("core: decode provenance: schema %q, want %q", p.Schema, ProvenanceSchema)
	}
	return &p, nil
}
