// Staged-pipeline artifacts: the typed, serializable values the pipeline
// stages exchange. Each artifact has a stable JSON codec (deterministic
// field order, sorted slices instead of maps, integers that can exceed
// 2^53 encoded as strings) and a content hash over those canonical bytes,
// so artifacts can be persisted, shipped between processes (the vpackd
// daemon's deployment loop) and compared for identity. Staleness between
// an artifact and the program it is applied to is detected by image hash
// and reported as ErrStaleArtifact.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"

	"repro/internal/asm"
	"repro/internal/equiv"
	"repro/internal/pack"
	"repro/internal/phasedb"
	"repro/internal/prog"
	"repro/internal/region"
)

// ErrStaleArtifact reports that an artifact was applied to a program whose
// linearized image differs from the one the artifact was derived from
// (the profile's PCs, region block IDs or package provenance would be
// meaningless). It is always wrapped with the mismatching hashes via %w;
// match it with errors.Is.
var ErrStaleArtifact = errors.New("stale artifact: program image differs from the artifact's origin")

// Artifact schema markers, bumped on incompatible codec changes.
const (
	ProfileArtifactSchema = "vpartifact/profile/v1"
	RegionArtifactSchema  = "vpartifact/region/v1"
	PackageSetSchema      = "vpartifact/packageset/v1"
)

// ImageHash fingerprints a linearized program: every code slot, the entry
// address, the initial data segment and the scratch allocation count.
// Programs that linearize identically — a Clone of a profiled program, or
// the same benchmark built twice — hash identically, which is exactly the
// condition under which profile PCs and region block IDs transfer.
func ImageHash(img *prog.Image) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	w64(uint64(img.Entry))
	w64(uint64(len(img.Code)))
	for i := range img.Code {
		in := &img.Code[i]
		w64(uint64(in.Op) | uint64(in.Rd)<<16 | uint64(in.Rs1)<<32 | uint64(in.Rs2)<<48)
		w64(uint64(in.Imm))
		w64(uint64(in.Target))
	}
	w64(uint64(len(img.Prog.Data)))
	for _, v := range img.Prog.Data {
		w64(uint64(v))
	}
	w64(uint64(img.Prog.ScratchWords))
	return h.Sum64()
}

// jsonHash hashes a value's canonical JSON encoding.
func jsonHash(v any) (uint64, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64(), nil
}

// ProfileArtifact is stage 1's output: the filtered phase database plus
// the profiling statistics, stamped with the image hash of the profiled
// program and the ProfileKey of the configuration that produced it.
type ProfileArtifact struct {
	Schema string `json:"schema"`
	// Program optionally labels the profiled program (benchmark/input).
	Program string `json:"program,omitempty"`
	// ProgramHash is ImageHash of the profiled image; later stages refuse
	// (ErrStaleArtifact) to apply the artifact to a differing image.
	ProgramHash uint64 `json:"program_hash,string"`
	// ProfileKey is Config.ProfileKey() of the producing configuration.
	ProfileKey uint64       `json:"profile_key,string"`
	Stats      ProfileStats `json:"stats"`
	// Phases is the serialized phase database.
	Phases *phasedb.Snapshot `json:"phases"`

	// mu guards the lazy materializations below: the artifact is immutable
	// once staged, but concurrent consumers (the suite runner's variants,
	// vpackd's repack workers) may race to materialize them first.
	mu sync.Mutex
	// db is the live database; the snapshot above is materialized from it
	// on encode, and vice versa on decode.
	db *phasedb.DB
	// cached content hash.
	contentHash uint64
	hashed      bool
}

// newProfileArtifact wraps a live profiling result.
func newProfileArtifact(cfg Config, img *prog.Image, db *phasedb.DB, st ProfileStats) *ProfileArtifact {
	return &ProfileArtifact{
		Schema:      ProfileArtifactSchema,
		ProgramHash: ImageHash(img),
		ProfileKey:  cfg.ProfileKey(),
		Stats:       st,
		db:          db,
	}
}

// DB returns the live phase database, materializing it from the decoded
// snapshot on first use.
func (pa *ProfileArtifact) DB() *phasedb.DB {
	pa.mu.Lock()
	defer pa.mu.Unlock()
	if pa.db == nil && pa.Phases != nil {
		pa.db = phasedb.FromSnapshot(pa.Phases)
	}
	return pa.db
}

// syncLocked materializes the serializable snapshot from the live
// database. Caller holds pa.mu.
func (pa *ProfileArtifact) syncLocked() {
	if pa.Phases == nil && pa.db != nil {
		pa.Phases = pa.db.Snapshot()
	}
}

// Hash returns the artifact's content hash (FNV-1a over the canonical
// JSON encoding), computed once and cached — artifacts are immutable
// after their stage returns.
func (pa *ProfileArtifact) Hash() (uint64, error) {
	pa.mu.Lock()
	defer pa.mu.Unlock()
	if pa.hashed {
		return pa.contentHash, nil
	}
	pa.syncLocked()
	type plain ProfileArtifact
	h, err := jsonHash((*plain)(pa))
	if err != nil {
		return 0, err
	}
	pa.contentHash, pa.hashed = h, true
	return h, nil
}

// EncodeJSON writes the artifact's canonical JSON form.
func (pa *ProfileArtifact) EncodeJSON(w io.Writer) error {
	pa.mu.Lock()
	defer pa.mu.Unlock()
	pa.syncLocked()
	type plain ProfileArtifact
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode((*plain)(pa))
}

// DecodeProfileArtifact reads an artifact previously written by
// EncodeJSON.
func DecodeProfileArtifact(r io.Reader) (*ProfileArtifact, error) {
	var pa ProfileArtifact
	if err := json.NewDecoder(r).Decode(&pa); err != nil {
		return nil, fmt.Errorf("core: decode profile artifact: %w", err)
	}
	if pa.Schema != ProfileArtifactSchema {
		return nil, fmt.Errorf("core: decode profile artifact: schema %q, want %q", pa.Schema, ProfileArtifactSchema)
	}
	return &pa, nil
}

// RegionBlock is one block's temperature record inside a RegionRecord.
// Blocks are referenced by their program-wide IDs, which Clone preserves.
type RegionBlock struct {
	Block  int         `json:"block"`
	Temp   region.Temp `json:"temp"`
	Weight uint64      `json:"weight,omitempty"`
	// HasProb marks blocks whose conditional branch appeared in the
	// hot-spot record; Prob is its measured taken probability.
	HasProb bool    `json:"has_prob,omitempty"`
	Prob    float64 `json:"prob,omitempty"`
}

// RegionArc is one CFG arc's temperature record.
type RegionArc struct {
	From   int         `json:"from"`
	Taken  bool        `json:"taken,omitempty"`
	Temp   region.Temp `json:"temp"`
	Weight uint64      `json:"weight,omitempty"`
}

// RegionRecord is one identified region in serializable form.
type RegionRecord struct {
	PhaseID          int           `json:"phase"`
	ProfiledBranches int           `json:"profiled_branches"`
	UnmappedBranches int           `json:"unmapped_branches,omitempty"`
	InferredHot      int           `json:"inferred_hot,omitempty"`
	InferredCold     int           `json:"inferred_cold,omitempty"`
	GrownBlocks      int           `json:"grown_blocks,omitempty"`
	Blocks           []RegionBlock `json:"blocks"`
	Arcs             []RegionArc   `json:"arcs"`
}

// RegionArtifact is stage 2's output: the identified hot regions for the
// selected phases, in selection (detection-weight) order.
type RegionArtifact struct {
	Schema string `json:"schema"`
	// ProgramHash is the image hash the regions' block IDs refer to.
	ProgramHash uint64 `json:"program_hash,string"`
	// ProfileHash is the content hash of the ProfileArtifact this was
	// derived from.
	ProfileHash uint64 `json:"profile_hash,string"`
	// TotalPhases is the profile's phase count before selection;
	// SkippedPhases counts phases whose identification failed.
	TotalPhases   int            `json:"total_phases"`
	SkippedPhases int            `json:"skipped_phases"`
	Records       []RegionRecord `json:"regions"`

	// live regions, valid for programs whose image hash matches
	// ProgramHash; boundTo is the program they point into.
	regions []*region.Region
	boundTo *prog.Program
	// cached content hash (artifacts are immutable once staged).
	contentHash uint64
	hashed      bool
}

// regionRecord lowers a live region to its serializable form.
func regionRecord(r *region.Region) RegionRecord {
	rec := RegionRecord{
		PhaseID:          r.PhaseID,
		ProfiledBranches: r.ProfiledBranches,
		UnmappedBranches: r.UnmappedBranches,
		InferredHot:      r.InferredHot,
		InferredCold:     r.InferredCold,
		GrownBlocks:      r.GrownBlocks,
	}
	for b, t := range r.BlockTemp {
		rb := RegionBlock{Block: b.ID, Temp: t, Weight: r.BlockWeight[b]}
		if p, ok := r.TakenProb[b]; ok {
			rb.HasProb, rb.Prob = true, p
		}
		rec.Blocks = append(rec.Blocks, rb)
	}
	sort.Slice(rec.Blocks, func(i, j int) bool { return rec.Blocks[i].Block < rec.Blocks[j].Block })
	for k, t := range r.ArcTemp {
		rec.Arcs = append(rec.Arcs, RegionArc{From: k.From.ID, Taken: k.Taken, Temp: t, Weight: r.ArcWeight[k]})
	}
	sort.Slice(rec.Arcs, func(i, j int) bool {
		if rec.Arcs[i].From != rec.Arcs[j].From {
			return rec.Arcs[i].From < rec.Arcs[j].From
		}
		return !rec.Arcs[i].Taken && rec.Arcs[j].Taken
	})
	return rec
}

// sync materializes the serializable Records from the live regions. The
// lowering is deferred off the pipeline hot path: Run never pays for it,
// only encoding, hashing or rebinding to a foreign program does.
func (ra *RegionArtifact) sync() {
	if len(ra.Records) == 0 && len(ra.regions) > 0 {
		ra.Records = make([]RegionRecord, 0, len(ra.regions))
		for _, r := range ra.regions {
			ra.Records = append(ra.Records, regionRecord(r))
		}
	}
}

// bind reconstructs the live regions against p, which must linearize to
// the artifact's ProgramHash (the caller checks).
func (ra *RegionArtifact) bind(p *prog.Program) ([]*region.Region, error) {
	if ra.boundTo == p && ra.regions != nil {
		return ra.regions, nil
	}
	ra.sync()
	blocks := make(map[int]*prog.Block, p.NumBlocks())
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			blocks[b.ID] = b
		}
	}
	regions := make([]*region.Region, 0, len(ra.Records))
	for i := range ra.Records {
		rec := &ra.Records[i]
		r := &region.Region{
			PhaseID:          rec.PhaseID,
			ProfiledBranches: rec.ProfiledBranches,
			UnmappedBranches: rec.UnmappedBranches,
			InferredHot:      rec.InferredHot,
			InferredCold:     rec.InferredCold,
			GrownBlocks:      rec.GrownBlocks,
			BlockTemp:        make(map[*prog.Block]region.Temp, len(rec.Blocks)),
			BlockWeight:      make(map[*prog.Block]uint64, len(rec.Blocks)),
			TakenProb:        make(map[*prog.Block]float64),
			ArcTemp:          make(map[region.ArcKey]region.Temp, len(rec.Arcs)),
			ArcWeight:        make(map[region.ArcKey]uint64, len(rec.Arcs)),
		}
		for _, rb := range rec.Blocks {
			b := blocks[rb.Block]
			if b == nil {
				return nil, fmt.Errorf("core: region artifact: phase %d references unknown block %d", rec.PhaseID, rb.Block)
			}
			r.BlockTemp[b] = rb.Temp
			r.BlockWeight[b] = rb.Weight
			if rb.HasProb {
				r.TakenProb[b] = rb.Prob
			}
		}
		for _, arc := range rec.Arcs {
			b := blocks[arc.From]
			if b == nil {
				return nil, fmt.Errorf("core: region artifact: phase %d references unknown block %d", rec.PhaseID, arc.From)
			}
			k := region.ArcKey{From: b, Taken: arc.Taken}
			r.ArcTemp[k] = arc.Temp
			r.ArcWeight[k] = arc.Weight
		}
		regions = append(regions, r)
	}
	ra.regions, ra.boundTo = regions, p
	return regions, nil
}

// NumRegions returns how many regions the artifact carries, without
// materializing either representation.
func (ra *RegionArtifact) NumRegions() int {
	if len(ra.regions) > 0 {
		return len(ra.regions)
	}
	return len(ra.Records)
}

// Regions materializes the artifact's live regions against p, whose
// linearized image must hash to the artifact's ProgramHash; pass the
// image so the staleness check runs. A RegionArtifact produced in-process
// by RegionStage returns its original regions with no reconstruction.
func (ra *RegionArtifact) Regions(p *prog.Program, img *prog.Image) ([]*region.Region, error) {
	if h := ImageHash(img); h != ra.ProgramHash {
		return nil, fmt.Errorf("core: region artifact for image %016x applied to image %016x: %w",
			ra.ProgramHash, h, ErrStaleArtifact)
	}
	return ra.bind(p)
}

// Hash returns the artifact's content hash, computed once and cached
// (artifacts are immutable after their stage returns).
func (ra *RegionArtifact) Hash() (uint64, error) {
	if ra.hashed {
		return ra.contentHash, nil
	}
	ra.sync()
	type plain RegionArtifact
	h, err := jsonHash((*plain)(ra))
	if err != nil {
		return 0, err
	}
	ra.contentHash, ra.hashed = h, true
	return h, nil
}

// hash is Hash with errors flattened to zero, for provenance stamping.
func (ra *RegionArtifact) hash() uint64 {
	h, _ := ra.Hash()
	return h
}

// EncodeJSON writes the artifact's canonical JSON form.
func (ra *RegionArtifact) EncodeJSON(w io.Writer) error {
	ra.sync()
	type plain RegionArtifact
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode((*plain)(ra))
}

// DecodeRegionArtifact reads an artifact previously written by EncodeJSON.
func DecodeRegionArtifact(r io.Reader) (*RegionArtifact, error) {
	var ra RegionArtifact
	if err := json.NewDecoder(r).Decode(&ra); err != nil {
		return nil, fmt.Errorf("core: decode region artifact: %w", err)
	}
	if ra.Schema != RegionArtifactSchema {
		return nil, fmt.Errorf("core: decode region artifact: schema %q, want %q", ra.Schema, RegionArtifactSchema)
	}
	return &ra, nil
}

// PackageInfo summarizes one extracted package inside a PackageSet.
type PackageInfo struct {
	Name         string `json:"name"`
	PhaseID      int    `json:"phase"`
	Root         string `json:"root"`
	Blocks       int    `json:"blocks"`
	Branches     int    `json:"branches"`
	Entries      int    `json:"entries"`
	Exits        int    `json:"exits"`
	Linked       int    `json:"linked"`
	InlinedCalls int    `json:"inlined_calls,omitempty"`
}

// PackStats carries the §5 static measurements of a PackageSet.
type PackStats struct {
	Packages      int `json:"packages"`
	Groups        int `json:"groups"`
	Links         int `json:"links"`
	Monitors      int `json:"monitors,omitempty"`
	LaunchPoints  int `json:"launch_points"`
	OrigInsts     int `json:"orig_insts"`
	AddedInsts    int `json:"added_insts"`
	SelectedInsts int `json:"selected_insts"`
}

// PackageSet is stage 3's output: the packed program with its installed,
// optimized packages, in a form that can be versioned, served and
// re-executed. The packed program itself travels as VPIR assembly, whose
// round trip reassembles to a byte-identical code image (DESIGN.md §6) —
// dummy-consumer exit annotations are shed in transit, so a reassembled
// program is executable and evaluable but not re-optimizable.
type PackageSet struct {
	Schema  string `json:"schema"`
	Program string `json:"program,omitempty"`
	// ProgramHash is the pre-packing image hash (the provenance chain back
	// through RegionHash to the profile); PackedHash the post-packing one.
	ProgramHash   uint64        `json:"program_hash,string"`
	RegionHash    uint64        `json:"region_hash,string"`
	PackedHash    uint64        `json:"packed_hash,string"`
	Phases        int           `json:"phases"`
	SkippedPhases int           `json:"skipped_phases,omitempty"`
	Stats         PackStats     `json:"stats"`
	Packages      []PackageInfo `json:"packages"`
	PackedAsm     string        `json:"packed_asm"`

	// Equiv holds the per-package translation-validation certificates
	// when the producing run had the -equiv gate on: the served set
	// carries its own proof metadata.
	Equiv []*equiv.Certificate `json:"equiv,omitempty"`

	// live results, set when the stage ran in-process.
	res    *pack.Result
	packed *prog.Program
}

// newPackageSet lowers an installation result over the packed program.
// PackedAsm and PackedHash are deferred to encode time (sync), so the
// pipeline hot path never disassembles or re-linearizes.
func newPackageSet(packed *prog.Program, res *pack.Result, regionHash, programHash uint64) *PackageSet {
	ps := &PackageSet{
		Schema:      PackageSetSchema,
		ProgramHash: programHash,
		RegionHash:  regionHash,
		Stats: PackStats{
			Packages:      len(res.Packages),
			Groups:        len(res.Groups),
			Links:         res.Links,
			Monitors:      res.Monitors,
			LaunchPoints:  res.LaunchPoints,
			OrigInsts:     res.OrigInsts,
			AddedInsts:    res.AddedInsts,
			SelectedInsts: res.SelectedInsts,
		},
		res:    res,
		packed: packed,
	}
	phases := make(map[int]bool)
	for _, pk := range res.Packages {
		phases[pk.PhaseID] = true
		linked := 0
		for _, e := range pk.Exits {
			if e.Linked != nil {
				linked++
			}
		}
		ps.Packages = append(ps.Packages, PackageInfo{
			Name:         pk.Fn.Name,
			PhaseID:      pk.PhaseID,
			Root:         pk.Root.Name,
			Blocks:       len(pk.Fn.Blocks),
			Branches:     pk.Branches,
			Entries:      len(pk.Entries),
			Exits:        len(pk.Exits),
			Linked:       linked,
			InlinedCalls: pk.InlinedCalls,
		})
	}
	ps.Phases = len(phases)
	return ps
}

// Result returns the live installation result when the set was produced
// in-process, or nil for a decoded set (the static Stats remain).
func (ps *PackageSet) Result() *pack.Result { return ps.res }

// Materialize returns the packed program: the in-process original when
// available, otherwise a program reassembled from PackedAsm whose
// linearized image is byte-identical to the original packed image.
func (ps *PackageSet) Materialize() (*prog.Program, error) {
	if ps.packed != nil {
		return ps.packed, nil
	}
	p, err := asm.Assemble(ps.PackedAsm)
	if err != nil {
		return nil, fmt.Errorf("core: package set: reassemble packed program: %w", err)
	}
	return p, nil
}

// CodeGrowth returns AddedInsts/OrigInsts (Table 3's metric), computable
// on decoded sets.
func (ps *PackageSet) CodeGrowth() float64 {
	if ps.Stats.OrigInsts == 0 {
		return 0
	}
	return float64(ps.Stats.AddedInsts) / float64(ps.Stats.OrigInsts)
}

// SelectedFraction returns SelectedInsts/OrigInsts.
func (ps *PackageSet) SelectedFraction() float64 {
	if ps.Stats.OrigInsts == 0 {
		return 0
	}
	return float64(ps.Stats.SelectedInsts) / float64(ps.Stats.OrigInsts)
}

// Replication returns AddedInsts/SelectedInsts (the paper's ~2.6 factor).
func (ps *PackageSet) Replication() float64 {
	if ps.Stats.SelectedInsts == 0 {
		return 0
	}
	return float64(ps.Stats.AddedInsts) / float64(ps.Stats.SelectedInsts)
}

// sync materializes the serialized program text and packed-image hash
// from the live program.
func (ps *PackageSet) sync() error {
	if ps.packed == nil {
		return nil
	}
	if ps.PackedAsm == "" {
		ps.PackedAsm = asm.Disassemble(ps.packed)
	}
	if ps.PackedHash == 0 {
		img, err := ps.packed.Linearize()
		if err != nil {
			return fmt.Errorf("core: package set: linearize packed program: %w", err)
		}
		ps.PackedHash = ImageHash(img)
	}
	return nil
}

// Hash returns the set's content hash.
func (ps *PackageSet) Hash() (uint64, error) {
	if err := ps.sync(); err != nil {
		return 0, err
	}
	type plain PackageSet
	return jsonHash((*plain)(ps))
}

// EncodeJSON writes the set's canonical JSON form.
func (ps *PackageSet) EncodeJSON(w io.Writer) error {
	if err := ps.sync(); err != nil {
		return err
	}
	type plain PackageSet
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode((*plain)(ps))
}

// DecodePackageSet reads a set previously written by EncodeJSON.
func DecodePackageSet(r io.Reader) (*PackageSet, error) {
	var ps PackageSet
	if err := json.NewDecoder(r).Decode(&ps); err != nil {
		return nil, fmt.Errorf("core: decode package set: %w", err)
	}
	if ps.Schema != PackageSetSchema {
		return nil, fmt.Errorf("core: decode package set: schema %q, want %q", ps.Schema, PackageSetSchema)
	}
	return &ps, nil
}
