// Staged pipeline API: the monolithic Run flow decomposed into first-class,
// independently invokable stages exchanging typed, serializable artifacts.
//
//	ProfileStage  (program image)            -> *ProfileArtifact
//	RegionStage   (image, ProfileArtifact)   -> *RegionArtifact
//	PackageStage  (program, RegionArtifact)  -> *PackageSet
//	Outcome.Evaluate                         -> *Evaluation
//
// Each stage can resume from an artifact decoded out of JSON — the basis
// of the vpackd continuous-optimization daemon, which accumulates
// streamed profiles, re-runs RegionStage+PackageStage in the background
// and serves the resulting PackageSets back out. Run/RunObserved and
// Package/PackageObserved are thin compositions over these stages; their
// observer streams are byte-identical to the pre-staged monolith
// (TestTraceGoldenSchema locks this).
package core

import (
	"fmt"
	"sort"

	"repro/internal/cpu"
	"repro/internal/equiv"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/pack"
	"repro/internal/phasedb"
	"repro/internal/prog"
	"repro/internal/region"
	"repro/internal/verify"
)

// ProfileStage runs stage 1: the program executes to completion under the
// Hot Spot Detector and the filtered phase database is wrapped into a
// ProfileArtifact stamped with the image hash and profile key. obsFn,
// when non-nil, receives every retired instruction (the suite collects
// baseline timing in the same pass).
func ProfileStage(cfg Config, img *prog.Image, obsFn func(*cpu.StepInfo)) (*ProfileArtifact, error) {
	return ProfileStageObserved(cfg, img, obsFn, obs.Nop{})
}

// ProfileStageObserved is ProfileStage reporting to an observer; its
// stream is exactly ProfileObserved's.
func ProfileStageObserved(cfg Config, img *prog.Image, obsFn func(*cpu.StepInfo), o obs.Observer) (*ProfileArtifact, error) {
	db, st, err := ProfileObserved(cfg, img, obsFn, o)
	if err != nil {
		return nil, err
	}
	return newProfileArtifact(cfg, img, db, st), nil
}

// RegionStage runs stage 2: phase selection (detection-weight order, the
// MaxPhases cap) followed by per-phase region identification (§3.2)
// against img, which must hash to the artifact's origin image —
// otherwise the stage fails with an ErrStaleArtifact-wrapped error.
//
// On success the artifact carries one region per usable phase in
// selection order. When every phase is skipped the artifact (with its
// skip count) is returned alongside an ErrNoPhases-wrapped error.
func RegionStage(cfg Config, img *prog.Image, pa *ProfileArtifact) (*RegionArtifact, error) {
	return RegionStageObserved(cfg, img, pa, obs.Nop{})
}

// RegionStageObserved is RegionStage reporting to an observer: the filter
// and region stage spans, PhaseSkipped events and the filter.*/region.*
// counters.
func RegionStageObserved(cfg Config, img *prog.Image, pa *ProfileArtifact, o obs.Observer) (*RegionArtifact, error) {
	if h := ImageHash(img); h != pa.ProgramHash {
		return nil, fmt.Errorf("core: region stage: profile of image %016x applied to image %016x: %w",
			pa.ProgramHash, h, ErrStaleArtifact)
	}
	db := pa.DB()

	// Phase selection: order by detection weight and apply the MaxPhases
	// cap. The software filter proper runs inline during profiling; this
	// is its post-pass over the accumulated database.
	fsp := o.StartSpan(obs.StageFilter)
	phases := append([]*phasedb.Phase(nil), db.Phases...)
	sort.SliceStable(phases, func(i, j int) bool {
		return phases[i].Detections > phases[j].Detections
	})
	if cfg.MaxPhases > 0 && len(phases) > cfg.MaxPhases {
		o.Count("filter.capped_phases", int64(len(phases)-cfg.MaxPhases))
		phases = phases[:cfg.MaxPhases]
	}
	o.Count("filter.selected_phases", int64(len(phases)))
	fsp.End()

	ra := &RegionArtifact{
		Schema:      RegionArtifactSchema,
		ProgramHash: pa.ProgramHash,
		TotalPhases: len(db.Phases),
		boundTo:     img.Prog,
	}
	if h, err := pa.Hash(); err == nil {
		ra.ProfileHash = h
	}

	// Region identification per selected phase (§3.2).
	rsp := o.StartSpan(obs.StageRegion)
	for _, ph := range phases {
		r, err := region.IdentifyObserved(cfg.Region, img, ph, o)
		if err != nil {
			ra.SkippedPhases++
			o.Emit(obs.Event{Kind: obs.PhaseSkipped, Phase: ph.ID, Name: err.Error()})
			o.Count("region.skipped_phases", 1)
			continue
		}
		if cfg.Verify {
			if err := verifyCheck(o, verify.Region("region", cfg.Region, img, ph, r)); err != nil {
				rsp.End()
				return ra, fmt.Errorf("core: region verification (phase %d): %w", ph.ID, err)
			}
		}
		ra.regions = append(ra.regions, r)
	}
	rsp.End()
	if len(ra.regions) == 0 {
		return ra, fmt.Errorf("core: %w (%d phases, %d skipped)", ErrNoPhases, len(db.Phases), ra.SkippedPhases)
	}
	return ra, nil
}

// PackageStage runs stage 3 on p, mutating it: package construction
// (§3.3), installation and linking, and the §5.4 optimization passes. p's
// image must hash to the region artifact's origin (ErrStaleArtifact
// otherwise) — a Clone of the profiled program qualifies, since cloning
// preserves block IDs and layout.
func PackageStage(cfg Config, p *prog.Program, img *prog.Image, ra *RegionArtifact) (*PackageSet, error) {
	return PackageStageObserved(cfg, p, img, ra, obs.Nop{})
}

// PackageStageObserved is PackageStage reporting to an observer: the
// package and optimize stage spans, per-package events from construction
// and linking, and PhaseSkipped events for regions that built no package.
func PackageStageObserved(cfg Config, p *prog.Program, img *prog.Image, ra *RegionArtifact, o obs.Observer) (*PackageSet, error) {
	if h := ImageHash(img); h != ra.ProgramHash {
		return nil, fmt.Errorf("core: package stage: regions of image %016x applied to image %016x: %w",
			ra.ProgramHash, h, ErrStaleArtifact)
	}
	regions, err := ra.bind(p)
	if err != nil {
		return nil, err
	}

	// Step 3: package construction (§3.3).
	skipped := 0
	psp := o.StartSpan(obs.StagePackage)
	var pkgs []*pack.Package
	for _, r := range regions {
		ps, err := pack.BuildPhaseObserved(cfg.Pack, p, r, o)
		if err != nil {
			skipped++
			o.Emit(obs.Event{Kind: obs.PhaseSkipped, Phase: r.PhaseID, Name: err.Error()})
			o.Count("pack.skipped_phases", 1)
			continue
		}
		pkgs = append(pkgs, ps...)
	}
	psp.End()
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("core: %w", ErrNoPackages)
	}
	pcfg := cfg.Pack
	if cfg.Verify {
		// Sandwich hook: InstallObserved runs this after its built-in
		// structural check, before the result escapes.
		pcfg.Verify = func(p *prog.Program, res *pack.Result) error {
			if err := verifyCheck(o, verify.Program("link", p)); err != nil {
				return err
			}
			return verifyCheck(o, verify.Packages("link", p, res))
		}
	}
	res, err := pack.InstallObserved(pcfg, p, pkgs, o)
	if err != nil {
		return nil, err
	}
	// Past installation the program carries the packages, so failures
	// below still surface the live result: the partial set mirrors the
	// monolith's Outcome.Pack being set before optimization could fail.
	var certs []*equiv.Certificate
	partial := func(err error) (*PackageSet, error) {
		set := &PackageSet{Schema: PackageSetSchema, ProgramHash: ra.ProgramHash, res: res, packed: p}
		set.SkippedPhases = skipped
		set.Equiv = certs
		return set, err
	}

	// Translation validation (Config.Equiv) snapshots every package
	// function now — after installation and linking, before the passes
	// mutate them — so each optimized package can be proved against the
	// region code it replaced.
	var snaps map[*pack.Package]*equiv.Snapshot
	if cfg.Equiv {
		snaps = make(map[*pack.Package]*equiv.Snapshot, len(res.Packages))
		for _, pk := range res.Packages {
			entries := make([]*prog.Block, 0, len(pk.Entries))
			for _, c := range pk.Entries {
				entries = append(entries, c)
			}
			snaps[pk] = equiv.Capture(p, pk.Fn, entries)
		}
	}

	// Optimization (§5.4): weight calculation, relayout, rescheduling.
	regByPhase := make(map[int]*region.Region, len(regions))
	for _, r := range regions {
		regByPhase[r.PhaseID] = r
	}
	osp := o.StartSpan(obs.StageOptimize)
	ps := cfg.passes()
	var rec *opt.PassRecord
	if cfg.Verify || cfg.Equiv {
		rec = &opt.PassRecord{}
		ps.Record = rec
	}
	for _, pk := range res.Packages {
		r := regByPhase[pk.PhaseID]
		if r == nil {
			continue
		}
		if cfg.Verify {
			// Passes mutate only pk.Fn, so the per-pass sandwich checks
			// just that function; the stage-boundary checks below re-prove
			// the whole program.
			fn := pk.Fn
			ps.Check = func(pass string) error {
				return verifyCheck(o, verify.Func("optimize/"+pass, p, fn))
			}
		}
		entries := make([]*prog.Block, 0, len(pk.Entries))
		for _, c := range pk.Entries {
			entries = append(entries, c)
		}
		if err := opt.ApplyPasses(ps, p, pk.Fn, entries, r, o); err != nil {
			osp.End()
			return partial(fmt.Errorf("core: pass verification (%s): %w", pk.Fn.Name, err))
		}
		if cfg.Equiv {
			cert, eerr := equiv.Prove(snaps[pk], equiv.Config{MaxPaths: cfg.EquivMaxPaths})
			if cert != nil {
				certs = append(certs, cert)
				rec.Equiv = certs
				o.Count(obs.EquivPackagesCounter, 1)
				o.Count(obs.EquivPathsProvedCounter, int64(cert.PathsProved))
				o.Count(obs.EquivPathsFuzzedCounter, int64(cert.PathsFuzzed))
			}
			if eerr != nil {
				n := len(equiv.Counterexamples(eerr))
				if n == 0 {
					n = 1
				}
				o.Count(obs.EquivViolationsCounter, int64(n))
				osp.End()
				return partial(fmt.Errorf("core: translation validation (%s): %w", pk.Fn.Name, eerr))
			}
		}
	}
	osp.End()

	if err := p.Verify(); err != nil {
		return partial(fmt.Errorf("core: packed program invalid: %w", err))
	}
	if cfg.Verify {
		checks := []error{
			verifyCheck(o, verify.Program("optimize", p)),
			verifyCheck(o, verify.Packages("optimize", p, res)),
			verifyCheck(o, verify.Passes("optimize", p, rec)),
			verifyCheck(o, verify.Schedule("optimize", rec)),
		}
		for _, err := range checks {
			if err != nil {
				return partial(fmt.Errorf("core: post-optimization verification: %w", err))
			}
		}
	}
	set := newPackageSet(p, res, ra.hash(), ra.ProgramHash)
	set.SkippedPhases = skipped
	set.Equiv = certs
	return set, nil
}

// packageStaged composes RegionStage and PackageStage over an existing
// profile artifact, accumulating results into out. It preserves the
// pre-staged monolith's behavior exactly: partial regions survive into
// out on a region-stage failure, and skip counts from both stages sum
// into out.SkippedPhases.
func packageStaged(cfg Config, out *Outcome, p *prog.Program, img *prog.Image, pa *ProfileArtifact, o obs.Observer) error {
	ra, err := RegionStageObserved(cfg, img, pa, o)
	if ra != nil {
		out.SkippedPhases += ra.SkippedPhases
		if regions, berr := ra.bind(p); berr == nil && len(regions) > 0 {
			out.Regions = regions
		}
	}
	if err != nil {
		return err
	}
	set, err := PackageStageObserved(cfg, p, img, ra, o)
	if set != nil {
		out.SkippedPhases += set.SkippedPhases
		out.Pack = set.Result()
		out.Equiv = set.Equiv
	}
	return err
}
