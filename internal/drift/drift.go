// Package drift is the phase-drift observability layer: it watches the
// stream of hardware hot-spot records a program emits *after* a package
// set has been published and quantifies how far the live phase population
// has moved from the profile snapshot that package set was built from.
//
// Incoming records are aggregated into fixed-size analysis windows (every
// Window records close one window) held in a bounded ring, so a
// long-running daemon keeps a recent timeline at O(Ring x branches)
// memory no matter how long the stream runs. Each window close scores the
// most recent windows against the baseline along the same axes the
// paper's §3.1 software filter separates phases by:
//
//   - weighted hot-set divergence — total-variation distance between the
//     recent windows' and the baseline's normalized branch-weight
//     distributions (0 = identical hot sets, 1 = disjoint);
//   - bias-flip count — branches common to both whose taken/not-taken
//     bias (under the phasedb thresholds) flipped direction;
//   - 30%-filter-rule crossings — the fraction of recent windows whose
//     branch set fails the paper's two-sided difference rule against
//     every baseline phase, i.e. windows that would have founded a new
//     phase in the database.
//
// The axes combine into a composite score by noisy-or,
//
//	score = 1 - (1-divergence) x (1-crossings) x (1-flipShare),
//
// so any single axis drifting pushes the score up and a stream identical
// to the baseline scores ~0. The score is exactly the trigger signal an
// incremental repacker needs: a cheap, continuously maintained answer to
// "is the profile behind the published packages still the profile the
// program is running?".
package drift

import (
	"sort"
	"sync"

	"repro/internal/hsd"
	"repro/internal/obs"
	"repro/internal/phasedb"
)

// Config sizes the drift tracker.
type Config struct {
	// Window is how many hot-spot records close one analysis window.
	// Zero or negative disables the tracker entirely (Observe no-ops).
	Window int
	// Ring is how many closed windows the timeline retains. Zero or
	// negative disables the tracker.
	Ring int
	// Recent is how many of the newest closed windows are merged when
	// scoring against the baseline (0 = DefaultRecent).
	Recent int
	// Phase supplies the bias and set-difference thresholds; zero fields
	// take the phasedb defaults (the paper's 30% rule and 30/70 bias
	// band).
	Phase phasedb.Config
}

// Default sizing: 16 records per window keeps a window comfortably inside
// one detector refresh epoch at the repo's scaled workloads, 64 windows
// of ring retain ~1000 records of history, and scoring the last 4 windows
// smooths single-window detector noise without hiding a real shift.
const (
	DefaultWindow = 16
	DefaultRing   = 64
	DefaultRecent = 4
)

// DefaultConfig returns the default tracker sizing.
func DefaultConfig() Config {
	return Config{Window: DefaultWindow, Ring: DefaultRing, Recent: DefaultRecent}
}

// Enabled reports whether the configuration tracks anything.
func (c Config) Enabled() bool { return c.Window > 0 && c.Ring > 0 }

func (c Config) recent() int {
	if c.Recent > 0 {
		return c.Recent
	}
	return DefaultRecent
}

// Score is one drift measurement: the three axes, their composite, and
// the context they were computed in.
type Score struct {
	// HotSetDivergence is the weighted hot-set divergence in [0,1].
	HotSetDivergence float64 `json:"hot_set_divergence"`
	// BiasFlips counts common branches whose bias flipped direction.
	BiasFlips int `json:"bias_flips"`
	// FilterCrossings is the fraction of scored windows crossing the 30%
	// filter rule against every baseline phase.
	FilterCrossings float64 `json:"filter_crossings"`
	// Composite is the noisy-or combination of the axes, in [0,1].
	Composite float64 `json:"composite"`
	// Peak is the maximum composite ever observed by this tracker; it
	// survives baseline swaps so transient shifts stay visible.
	Peak float64 `json:"peak"`
	// WindowsScored is how many closed windows the measurement merged.
	WindowsScored int `json:"windows_scored"`
	// BaselineVersion is the published version the baseline snapshot came
	// from (0 = no baseline: every axis reads 0).
	BaselineVersion int `json:"baseline_version"`
}

// WindowSummary is one closed analysis window as the timeline reports it.
type WindowSummary struct {
	// Seq numbers closed windows from 1.
	Seq int `json:"seq"`
	// Records and Branches size the window's aggregated content.
	Records  int `json:"records"`
	Branches int `json:"branches"`
	// Phases lists the distinct phase IDs the daemon's database attributed
	// the window's records to, ascending ( -1 entries mean the caller
	// supplied no attribution).
	Phases []int `json:"phases,omitempty"`
	// FirstInst/LastInst span the window in retired instructions; their
	// difference and Records give the window's detection rate.
	FirstInst uint64 `json:"first_inst,string"`
	LastInst  uint64 `json:"last_inst,string"`
	// Divergence, BiasFlips and Crossed score this window alone against
	// the baseline live at close time.
	Divergence float64 `json:"divergence"`
	BiasFlips  int     `json:"bias_flips"`
	Crossed    bool    `json:"crossed"`
	// Score is the composite over the recent windows at close time.
	Score float64 `json:"score"`
	// BaselineVersion is the baseline the window was scored against.
	BaselineVersion int `json:"baseline_version"`
}

// Status is a tracker snapshot, shaped for the daemon's /v1/drift
// endpoint.
type Status struct {
	Program         string `json:"program"`
	Enabled         bool   `json:"enabled"`
	WindowRecords   int    `json:"window_records"`
	RingWindows     int    `json:"ring_windows"`
	Samples         int64  `json:"samples"`
	Windows         int64  `json:"windows"`
	BaselineVersion int    `json:"baseline_version"`
	Score           Score  `json:"score"`
}

// branchAgg accumulates one branch inside a window.
type branchAgg struct {
	exec, taken uint64
}

// window is one (open or closed) analysis window.
type window struct {
	summary  WindowSummary
	branches map[int64]*branchAgg
	phases   map[int]bool
}

// baseline is the digested profile snapshot drift is measured against.
type baseline struct {
	version int
	// weight is the normalized executed weight per branch PC, each
	// phase's representative window scaled by its detection count.
	weight map[int64]float64
	// bias is each PC's direction preference in the baseline.
	bias map[int64]phasedb.Bias
	// sets holds each baseline phase's branch-PC set for the 30%-rule
	// crossing check.
	sets []map[int64]bool
}

// Tracker maintains one program's drift timeline. All methods are safe
// for concurrent use; Observe is O(branches in the record) and a window
// close adds O(Recent x branches + windows x phases) for the score, so
// the ingest path never blocks on anything slower than a mutex.
type Tracker struct {
	cfg     Config
	program string
	o       obs.Observer

	mu      sync.Mutex
	cur     *window
	ring    []*window // closed windows, oldest first, len <= cfg.Ring
	seq     int
	samples int64
	windows int64
	base    *baseline
	last    Score
	peak    float64
}

// NewTracker builds a tracker for program, reporting counters, gauges,
// histograms and typed events to o (obs.Nop{} for none). Per-program
// metric series carry a ".program" suffix next to the canonical names in
// internal/obs.
func NewTracker(cfg Config, program string, o obs.Observer) *Tracker {
	if cfg.Recent <= 0 {
		cfg.Recent = DefaultRecent
	}
	def := phasedb.DefaultConfig()
	if cfg.Phase.DifferenceThreshold == 0 {
		cfg.Phase.DifferenceThreshold = def.DifferenceThreshold
	}
	if cfg.Phase.BiasedLow == 0 {
		cfg.Phase.BiasedLow = def.BiasedLow
	}
	if cfg.Phase.BiasedHigh == 0 {
		cfg.Phase.BiasedHigh = def.BiasedHigh
	}
	if o == nil {
		o = obs.Nop{}
	}
	return &Tracker{cfg: cfg, program: program, o: o}
}

// Program returns the tracked program's name.
func (t *Tracker) Program() string { return t.program }

// Enabled reports whether the tracker records anything.
func (t *Tracker) Enabled() bool { return t.cfg.Enabled() }

// Observe folds one hot-spot record into the current window. phaseID is
// the phase the consumer's database attributed the record to (-1 when
// unattributed). It reports whether the record closed a window — the
// moment gauges and the composite score were refreshed.
func (t *Tracker) Observe(hs hsd.HotSpot, phaseID int) bool {
	if !t.cfg.Enabled() {
		return false
	}
	t.mu.Lock()
	t.samples++
	if t.cur == nil {
		t.cur = &window{
			branches: make(map[int64]*branchAgg, len(hs.Branches)),
			phases:   make(map[int]bool, 2),
		}
		t.cur.summary.FirstInst = hs.DetectedAtInst
	}
	w := t.cur
	w.summary.Records++
	w.summary.LastInst = hs.DetectedAtInst
	w.phases[phaseID] = true
	for _, b := range hs.Branches {
		agg := w.branches[b.PC]
		if agg == nil {
			agg = &branchAgg{}
			w.branches[b.PC] = agg
		}
		agg.exec += uint64(b.Exec)
		agg.taken += uint64(b.Taken)
	}
	closed := w.summary.Records >= t.cfg.Window
	if closed {
		t.closeWindowLocked()
	}
	t.mu.Unlock()

	t.o.Count(obs.DriftSamplesCounter, 1)
	t.o.Count(obs.DriftSamplesCounter+"."+t.program, 1)
	return closed
}

// closeWindowLocked seals the current window into the ring, scores the
// recent windows against the baseline and publishes the measurement.
// Caller holds t.mu.
func (t *Tracker) closeWindowLocked() {
	w := t.cur
	t.cur = nil
	t.seq++
	t.windows++
	w.summary.Seq = t.seq
	w.summary.Branches = len(w.branches)
	for id := range w.phases {
		w.summary.Phases = append(w.summary.Phases, id)
	}
	sort.Ints(w.summary.Phases)

	if len(t.ring) >= t.cfg.Ring {
		// Bounded ring: evict the oldest closed window.
		copy(t.ring, t.ring[1:])
		t.ring[len(t.ring)-1] = w
	} else {
		t.ring = append(t.ring, w)
	}

	// Per-window axes against the live baseline, for the timeline view.
	if t.base != nil {
		div, flips, _ := t.scoreWindows([]*window{w})
		w.summary.Divergence = div
		w.summary.BiasFlips = flips
		w.summary.Crossed = t.windowCrossed(w)
		w.summary.BaselineVersion = t.base.version
	}

	// Composite over the recent windows.
	t.last = t.computeScoreLocked()
	if t.last.Composite > t.peak {
		t.peak = t.last.Composite
	}
	t.last.Peak = t.peak
	w.summary.Score = t.last.Composite

	t.publishLocked(w.summary)
}

// publishLocked exports a freshly closed window's measurement. Caller
// holds t.mu; the observer has its own synchronization and never calls
// back into the tracker.
func (t *Tracker) publishLocked(ws WindowSummary) {
	p := "." + t.program
	t.o.Count(obs.DriftWindowsCounter, 1)
	t.o.Count(obs.DriftWindowsCounter+p, 1)
	t.o.Gauge(obs.DriftScoreGauge+p, t.last.Composite)
	t.o.Gauge(obs.DriftPeakGauge+p, t.peak)
	t.o.Gauge(obs.DriftDivergenceGauge+p, t.last.HotSetDivergence)
	t.o.Gauge(obs.DriftBiasFlipsGauge+p, float64(t.last.BiasFlips))
	t.o.Gauge(obs.DriftCrossingsGauge+p, t.last.FilterCrossings)
	t.o.Observe(obs.DriftScoreHist, t.last.Composite*100)
	t.o.Observe(obs.DriftScoreHist+p, t.last.Composite*100)
	t.o.Emit(obs.Event{Kind: obs.DriftWindow, Phase: -1, Name: t.program, N: int64(ws.Records)})
	t.o.Emit(obs.Event{Kind: obs.DriftScored, Phase: -1, Name: t.program, N: int64(t.last.Composite * 10000)})
}

// SetBaseline installs the phase snapshot backing a freshly published
// package version as the drift baseline and rescoring reference. The
// peak composite survives the swap.
func (t *Tracker) SetBaseline(snap *phasedb.Snapshot, version int) {
	if !t.cfg.Enabled() || snap == nil {
		return
	}
	b := digestSnapshot(t.cfg.Phase, snap, version)
	t.mu.Lock()
	t.base = b
	t.last = t.computeScoreLocked()
	t.last.Peak = t.peak
	t.mu.Unlock()

	p := "." + t.program
	t.o.Gauge(obs.DriftBaselineVersionGauge+p, float64(version))
	t.o.Emit(obs.Event{Kind: obs.DriftBaseline, Phase: -1, Name: t.program, N: int64(version)})
}

// Score returns the latest measurement (recomputed lazily against the
// current ring, so callers between window closes still see fresh axes).
func (t *Tracker) Score() Score {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.computeScoreLocked()
	if s.Composite > t.peak {
		t.peak = s.Composite
	}
	s.Peak = t.peak
	return s
}

// Status snapshots the tracker for serving.
func (t *Tracker) Status() Status {
	s := Status{
		Program:       t.program,
		Enabled:       t.cfg.Enabled(),
		WindowRecords: t.cfg.Window,
		RingWindows:   t.cfg.Ring,
	}
	s.Score = t.Score()
	t.mu.Lock()
	s.Samples = t.samples
	s.Windows = t.windows
	if t.base != nil {
		s.BaselineVersion = t.base.version
	}
	t.mu.Unlock()
	s.Score.BaselineVersion = s.BaselineVersion
	return s
}

// Timeline returns the retained windows' summaries, oldest first.
func (t *Tracker) Timeline() []WindowSummary {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]WindowSummary, 0, len(t.ring))
	for _, w := range t.ring {
		out = append(out, w.summary)
	}
	return out
}

// computeScoreLocked scores the newest Recent closed windows against the
// baseline. Caller holds t.mu.
func (t *Tracker) computeScoreLocked() Score {
	s := Score{}
	if t.base != nil {
		s.BaselineVersion = t.base.version
	}
	n := t.cfg.recent()
	if n > len(t.ring) {
		n = len(t.ring)
	}
	if n == 0 || t.base == nil {
		return s
	}
	recent := t.ring[len(t.ring)-n:]
	s.WindowsScored = n

	div, flips, flipShare := t.scoreWindows(recent)
	s.HotSetDivergence = div
	s.BiasFlips = flips

	crossed := 0
	for _, w := range recent {
		if t.windowCrossed(w) {
			crossed++
		}
	}
	s.FilterCrossings = float64(crossed) / float64(n)

	// Noisy-or: identical streams leave every factor at 1 (score 0); any
	// axis saturating alone drives the composite toward 1.
	s.Composite = 1 - (1-s.HotSetDivergence)*(1-s.FilterCrossings)*(1-flipShare)
	if s.Composite < 0 {
		s.Composite = 0
	}
	if s.Composite > 1 {
		s.Composite = 1
	}
	return s
}

// scoreWindows merges the given windows and computes the weighted hot-set
// divergence and bias-flip axes against the baseline. flipShare is flips
// normalized by the number of branches biased on both sides. Caller holds
// t.mu; t.base is non-nil.
func (t *Tracker) scoreWindows(ws []*window) (divergence float64, flips int, flipShare float64) {
	merged := make(map[int64]*branchAgg, 64)
	var total uint64
	for _, w := range ws {
		for pc, agg := range w.branches {
			m := merged[pc]
			if m == nil {
				m = &branchAgg{}
				merged[pc] = m
			}
			m.exec += agg.exec
			m.taken += agg.taken
			total += agg.exec
		}
	}
	if total == 0 {
		return 0, 0, 0
	}

	// Total-variation distance between the normalized weight vectors:
	// 1/2 * sum |wCur - wBase| over the union of PCs.
	var tv float64
	for pc, m := range merged {
		cur := float64(m.exec) / float64(total)
		tv += abs(cur - t.base.weight[pc])
	}
	for pc, bw := range t.base.weight {
		if _, ok := merged[pc]; !ok {
			tv += bw
		}
	}
	divergence = tv / 2
	if divergence > 1 {
		divergence = 1
	}

	// Bias flips over the common, definitely-biased branches.
	common := 0
	for pc, m := range merged {
		bb, ok := t.base.bias[pc]
		if !ok || bb == phasedb.BiasNone || m.exec == 0 {
			continue
		}
		cb := t.cfg.Phase.BiasOf(float64(m.taken) / float64(m.exec))
		if cb == phasedb.BiasNone {
			continue
		}
		common++
		if cb != bb {
			flips++
		}
	}
	if common > 0 {
		flipShare = float64(flips) / float64(common)
	}
	return divergence, flips, flipShare
}

// windowCrossed applies the paper's two-sided 30% difference rule between
// the window's branch set and every baseline phase set: the window
// crosses when it differs from all of them, i.e. the software filter
// would have founded a new phase for it. Caller holds t.mu; t.base is
// non-nil.
func (t *Tracker) windowCrossed(w *window) bool {
	if len(w.branches) == 0 {
		return false
	}
	thr := t.cfg.Phase.DifferenceThreshold
	for _, set := range t.base.sets {
		if len(set) == 0 {
			continue
		}
		missingFromSet := 0
		for pc := range w.branches {
			if !set[pc] {
				missingFromSet++
			}
		}
		if float64(missingFromSet) >= thr*float64(len(w.branches)) {
			continue
		}
		missingFromWin := 0
		for pc := range set {
			if _, ok := w.branches[pc]; !ok {
				missingFromWin++
			}
		}
		if float64(missingFromWin) >= thr*float64(len(set)) {
			continue
		}
		return false // similar to this phase: no crossing
	}
	return true
}

// digestSnapshot lowers a phase-database snapshot into the baseline form:
// normalized per-PC weights (each phase's representative window scaled by
// its detection count), per-PC bias from the heaviest occurrence, and the
// per-phase PC sets.
func digestSnapshot(cfg phasedb.Config, snap *phasedb.Snapshot, version int) *baseline {
	b := &baseline{
		version: version,
		weight:  make(map[int64]float64, 64),
		bias:    make(map[int64]phasedb.Bias, 64),
		sets:    make([]map[int64]bool, 0, len(snap.Phases)),
	}
	heaviest := make(map[int64]uint64, 64)
	var total float64
	for _, ph := range snap.Phases {
		det := uint64(ph.Detections)
		if det == 0 {
			det = 1
		}
		set := make(map[int64]bool, len(ph.Branches))
		for _, br := range ph.Branches {
			set[br.PC] = true
			w := br.Exec * det
			b.weight[br.PC] += float64(w)
			total += float64(w)
			if w >= heaviest[br.PC] {
				heaviest[br.PC] = w
				b.bias[br.PC] = cfg.BiasOf(br.TakenFraction())
			}
		}
		b.sets = append(b.sets, set)
	}
	if total > 0 {
		for pc := range b.weight {
			b.weight[pc] /= total
		}
	}
	return b
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
