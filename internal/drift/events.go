// The daemon-facing event stream: a bounded ring of typed occurrences
// (ingests, window closes, drift scores, repacks, baseline publishes)
// that GET /v1/events serves with cursor semantics. Appending is a
// constant-time slot write under a mutex, so the ingest hot path never
// blocks on readers and the ring never grows past its capacity — old
// events are overwritten and the gap is observable through the cursor.
package drift

import "sync"

// Stream event kinds, as the /v1/events JSON reports them.
const (
	EventIngest      = "ingest"       // one accepted profile POST (N = records)
	EventWindow      = "drift_window" // one closed analysis window (N = records, Score = composite)
	EventRepackStart = "repack_start" // a worker picked a shard off the queue
	EventRepackDone  = "repack_done"  // a repack finished (N = version; Detail = error)
	EventBaseline    = "baseline"     // a published version became the drift baseline (N = version)
)

// StreamEvent is one daemon occurrence in the /v1/events ring.
type StreamEvent struct {
	// Seq numbers events from 1, monotonically; a reader that sees a jump
	// between its cursor and Earliest missed overwritten events.
	Seq int64 `json:"seq"`
	// UnixUS stamps the event in unix microseconds.
	UnixUS  int64  `json:"unix_us"`
	Kind    string `json:"kind"`
	Program string `json:"program,omitempty"`
	// Trace is the request-scoped trace ID the event belongs to (an
	// ingest's or a repack's).
	Trace  string  `json:"trace,omitempty"`
	N      int64   `json:"n,omitempty"`
	Score  float64 `json:"score,omitempty"`
	Detail string  `json:"detail,omitempty"`
}

// DefaultEventRing is the default ring capacity.
const DefaultEventRing = 1024

// EventRing is the bounded, never-blocking event buffer.
type EventRing struct {
	mu   sync.Mutex
	buf  []StreamEvent
	next int64 // seq the next Append assigns
}

// NewEventRing returns a ring retaining the last capacity events
// (<= 0 selects DefaultEventRing).
func NewEventRing(capacity int) *EventRing {
	if capacity <= 0 {
		capacity = DefaultEventRing
	}
	return &EventRing{buf: make([]StreamEvent, capacity), next: 1}
}

// Append stamps e with the next sequence number and stores it, evicting
// the oldest event when the ring is full. It returns the assigned seq.
func (r *EventRing) Append(e StreamEvent) int64 {
	r.mu.Lock()
	e.Seq = r.next
	r.next++
	r.buf[e.Seq%int64(len(r.buf))] = e
	r.mu.Unlock()
	return e.Seq
}

// Since returns up to limit retained events with Seq > after, oldest
// first (limit <= 0 means all). earliest is the oldest retained seq (0
// when the ring is empty) — a reader whose cursor is below earliest-1
// has missed events — and next is the cursor to resume from.
func (r *EventRing) Since(after int64, limit int) (events []StreamEvent, earliest, next int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	last := r.next - 1
	if last == 0 {
		return nil, 0, after
	}
	earliest = last - int64(len(r.buf)) + 1
	if earliest < 1 {
		earliest = 1
	}
	from := after + 1
	if from < earliest {
		from = earliest
	}
	if from > last {
		return nil, earliest, after
	}
	n := last - from + 1
	if limit > 0 && n > int64(limit) {
		n = int64(limit)
	}
	events = make([]StreamEvent, 0, n)
	for seq := from; seq < from+n; seq++ {
		events = append(events, r.buf[seq%int64(len(r.buf))])
	}
	return events, earliest, from + n - 1
}

// Len reports how many events the ring currently retains.
func (r *EventRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next - 1
	if n > int64(len(r.buf)) {
		n = int64(len(r.buf))
	}
	return int(n)
}
