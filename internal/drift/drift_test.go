package drift

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/hsd"
	"repro/internal/obs"
	"repro/internal/phasedb"
)

// spot builds one synthetic hot-spot record over the given PCs, each
// branch executing exec times and taking taken of them, stamped at inst.
func spot(seq int, inst uint64, pcs []int64, exec, taken uint32) hsd.HotSpot {
	hs := hsd.HotSpot{Seq: seq, DetectedAtBranch: inst / 4, DetectedAtInst: inst}
	for _, pc := range pcs {
		hs.Branches = append(hs.Branches, hsd.BranchRecord{PC: pc, Exec: exec, Taken: taken})
	}
	return hs
}

func pcRange(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(8*i)
	}
	return out
}

// baselineFrom records the spots into a fresh phase database and digests
// its snapshot — the same path the daemon takes when publishing.
func baselineFrom(t *testing.T, tr *Tracker, version int, spots []hsd.HotSpot) {
	t.Helper()
	db := phasedb.New(phasedb.Config{})
	for _, hs := range spots {
		db.Record(hs)
	}
	tr.SetBaseline(db.Snapshot(), version)
}

func TestWindowAggregationAndRingBound(t *testing.T) {
	cfg := Config{Window: 4, Ring: 3}
	tr := NewTracker(cfg, "prog", obs.Nop{})
	pcs := pcRange(1000, 8)

	closes := 0
	const records = 40 // 10 windows through a 3-window ring
	for i := 0; i < records; i++ {
		if tr.Observe(spot(i, uint64(100*i), pcs, 100, 90), 0) {
			closes++
		}
	}
	if closes != records/cfg.Window {
		t.Fatalf("closed %d windows, want %d", closes, records/cfg.Window)
	}
	tl := tr.Timeline()
	if len(tl) != cfg.Ring {
		t.Fatalf("timeline retains %d windows, want ring bound %d", len(tl), cfg.Ring)
	}
	// The retained windows are the newest, in order, each fully sized.
	wantSeq := records/cfg.Window - cfg.Ring + 1
	for i, ws := range tl {
		if ws.Seq != wantSeq+i {
			t.Errorf("timeline[%d].Seq = %d, want %d", i, ws.Seq, wantSeq+i)
		}
		if ws.Records != cfg.Window {
			t.Errorf("timeline[%d].Records = %d, want %d", i, ws.Records, cfg.Window)
		}
		if ws.Branches != len(pcs) {
			t.Errorf("timeline[%d].Branches = %d, want %d", i, ws.Branches, len(pcs))
		}
		if ws.FirstInst >= ws.LastInst {
			t.Errorf("timeline[%d] inst span [%d,%d] not increasing", i, ws.FirstInst, ws.LastInst)
		}
		if len(ws.Phases) != 1 || ws.Phases[0] != 0 {
			t.Errorf("timeline[%d].Phases = %v, want [0]", i, ws.Phases)
		}
	}
	st := tr.Status()
	if st.Samples != records || st.Windows != int64(records/cfg.Window) {
		t.Fatalf("status samples/windows = %d/%d, want %d/%d",
			st.Samples, st.Windows, records, records/cfg.Window)
	}
}

func TestScoreZeroWithoutBaseline(t *testing.T) {
	tr := NewTracker(Config{Window: 2, Ring: 4}, "p", obs.Nop{})
	for i := 0; i < 8; i++ {
		tr.Observe(spot(i, uint64(i), pcRange(0, 4), 10, 9), -1)
	}
	s := tr.Score()
	if s.Composite != 0 || s.BaselineVersion != 0 || s.WindowsScored != 0 {
		t.Fatalf("pre-baseline score = %+v, want zeroes", s)
	}
	// The timeline still accumulates so a later baseline can be scored
	// retroactively by the caller.
	if len(tr.Timeline()) != 4 {
		t.Fatalf("timeline len = %d, want 4", len(tr.Timeline()))
	}
}

func TestScoreStableStream(t *testing.T) {
	cfg := Config{Window: 4, Ring: 8}
	tr := NewTracker(cfg, "p", obs.Nop{})
	pcs := pcRange(0x400, 12)
	var spots []hsd.HotSpot
	for i := 0; i < 16; i++ {
		spots = append(spots, spot(i, uint64(1000*i), pcs, 200, 180))
	}
	baselineFrom(t, tr, 1, spots)
	for _, hs := range spots {
		tr.Observe(hs, 0)
	}
	s := tr.Score()
	if s.BaselineVersion != 1 {
		t.Fatalf("baseline version = %d, want 1", s.BaselineVersion)
	}
	if s.Composite > 0.05 {
		t.Fatalf("stable stream drift composite = %.4f, want ~0 (%+v)", s.Composite, s)
	}
	if s.BiasFlips != 0 || s.FilterCrossings != 0 {
		t.Fatalf("stable stream flips/crossings = %d/%.2f, want 0/0", s.BiasFlips, s.FilterCrossings)
	}
}

func TestScoreBiasFlip(t *testing.T) {
	tr := NewTracker(Config{Window: 4, Ring: 8}, "p", obs.Nop{})
	pcs := pcRange(0x400, 10)
	var base []hsd.HotSpot
	for i := 0; i < 8; i++ {
		base = append(base, spot(i, uint64(1000*i), pcs, 100, 90)) // taken-biased
	}
	baselineFrom(t, tr, 1, base)
	for i := 0; i < 8; i++ {
		tr.Observe(spot(i, uint64(1000*i), pcs, 100, 10), 0) // flipped: not-taken
	}
	s := tr.Score()
	if s.BiasFlips != len(pcs) {
		t.Fatalf("bias flips = %d, want %d", s.BiasFlips, len(pcs))
	}
	if s.Composite < 0.9 {
		t.Fatalf("all-flipped composite = %.4f, want ~1 (%+v)", s.Composite, s)
	}
	// Same branch set, same weights: the other axes stay quiet.
	if s.HotSetDivergence > 0.05 {
		t.Fatalf("flip-only divergence = %.4f, want ~0", s.HotSetDivergence)
	}
}

func TestScoreHotSetShift(t *testing.T) {
	tr := NewTracker(Config{Window: 4, Ring: 8}, "p", obs.Nop{})
	var base []hsd.HotSpot
	for i := 0; i < 8; i++ {
		base = append(base, spot(i, uint64(1000*i), pcRange(0x400, 10), 100, 90))
	}
	baselineFrom(t, tr, 1, base)
	// A disjoint hot set: maximal divergence, every window crosses the
	// 30% rule, no common branches to flip.
	for i := 0; i < 8; i++ {
		tr.Observe(spot(i, uint64(9000+1000*i), pcRange(0x8000, 10), 100, 90), 1)
	}
	s := tr.Score()
	if s.HotSetDivergence < 0.95 {
		t.Fatalf("disjoint divergence = %.4f, want ~1", s.HotSetDivergence)
	}
	if s.FilterCrossings != 1 {
		t.Fatalf("crossings = %.2f, want 1", s.FilterCrossings)
	}
	if s.BiasFlips != 0 {
		t.Fatalf("flips = %d, want 0", s.BiasFlips)
	}
	if s.Composite < 0.95 {
		t.Fatalf("composite = %.4f, want ~1", s.Composite)
	}
	// The timeline's newest window carries the same verdict.
	tl := tr.Timeline()
	last := tl[len(tl)-1]
	if !last.Crossed || last.Divergence < 0.95 {
		t.Fatalf("last window = %+v, want crossed with ~1 divergence", last)
	}
}

func TestPartialShiftScoresBetween(t *testing.T) {
	tr := NewTracker(Config{Window: 4, Ring: 8}, "p", obs.Nop{})
	var base []hsd.HotSpot
	for i := 0; i < 8; i++ {
		base = append(base, spot(i, uint64(1000*i), pcRange(0x400, 10), 100, 90))
	}
	baselineFrom(t, tr, 1, base)
	// One branch of ten swaps out: below the 30% filter rule, so only the
	// divergence axis moves, and only slightly.
	mixed := append(pcRange(0x400, 9), 0x8000)
	for i := 0; i < 8; i++ {
		tr.Observe(spot(i, uint64(1000*i), mixed, 100, 90), 1)
	}
	s := tr.Score()
	if s.HotSetDivergence < 0.05 || s.HotSetDivergence > 0.2 {
		t.Fatalf("mild-shift divergence = %.4f, want ~0.1", s.HotSetDivergence)
	}
	if s.FilterCrossings != 0 {
		t.Fatalf("mild-shift crossings = %.2f, want 0 (below 30%% rule)", s.FilterCrossings)
	}
	if s.Composite <= 0.02 || s.Composite >= 0.5 {
		t.Fatalf("mild-shift composite = %.4f, want small but nonzero", s.Composite)
	}
}

func TestBaselineSwapAndPeak(t *testing.T) {
	tr := NewTracker(Config{Window: 4, Ring: 8}, "p", obs.Nop{})
	var base []hsd.HotSpot
	for i := 0; i < 8; i++ {
		base = append(base, spot(i, uint64(1000*i), pcRange(0x400, 10), 100, 90))
	}
	baselineFrom(t, tr, 1, base)
	var shifted []hsd.HotSpot
	for i := 0; i < 8; i++ {
		shifted = append(shifted, spot(i, uint64(1000*i), pcRange(0x8000, 10), 100, 90))
	}
	for _, hs := range shifted {
		tr.Observe(hs, 1)
	}
	high := tr.Score()
	if high.Composite < 0.9 {
		t.Fatalf("shifted composite = %.4f, want ~1", high.Composite)
	}

	// Rebaselining on the shifted profile drops the live score back but
	// the peak remembers the excursion.
	baselineFrom(t, tr, 2, shifted)
	s := tr.Score()
	if s.BaselineVersion != 2 {
		t.Fatalf("baseline version = %d, want 2", s.BaselineVersion)
	}
	if s.Composite > 0.05 {
		t.Fatalf("rebaselined composite = %.4f, want ~0", s.Composite)
	}
	if s.Peak < high.Composite {
		t.Fatalf("peak = %.4f lost the excursion %.4f", s.Peak, high.Composite)
	}
}

func TestDisabledTracker(t *testing.T) {
	for _, cfg := range []Config{{}, {Window: 0, Ring: 8}, {Window: 8, Ring: 0}} {
		tr := NewTracker(cfg, "p", obs.Nop{})
		if tr.Enabled() {
			t.Fatalf("config %+v reports enabled", cfg)
		}
		for i := 0; i < 32; i++ {
			if tr.Observe(spot(i, uint64(i), pcRange(0, 4), 10, 9), 0) {
				t.Fatal("disabled tracker closed a window")
			}
		}
		tr.SetBaseline(&phasedb.Snapshot{}, 1)
		if st := tr.Status(); st.Samples != 0 || st.Windows != 0 || st.BaselineVersion != 0 {
			t.Fatalf("disabled tracker status = %+v, want zeroes", st)
		}
		if tl := tr.Timeline(); len(tl) != 0 {
			t.Fatalf("disabled tracker timeline = %v", tl)
		}
	}
}

// TestTrackerMetricsAndEvents checks the observer export: gauges, the
// always-present counters, the score histogram and the typed events.
func TestTrackerMetricsAndEvents(t *testing.T) {
	rec := obs.NewRecorder()
	tr := NewTracker(Config{Window: 2, Ring: 4}, "gzip", rec)
	var base []hsd.HotSpot
	for i := 0; i < 4; i++ {
		base = append(base, spot(i, uint64(1000*i), pcRange(0x400, 6), 100, 90))
	}
	baselineFrom(t, tr, 3, base)
	for i := 0; i < 4; i++ {
		tr.Observe(spot(i, uint64(1000*i), pcRange(0x9000, 6), 100, 90), 1)
	}

	tx := rec.Export()
	if got := tx.Metrics.Counters[obs.DriftSamplesCounter]; got != 4 {
		t.Errorf("%s = %d, want 4", obs.DriftSamplesCounter, got)
	}
	if got := tx.Metrics.Counters[obs.DriftWindowsCounter+".gzip"]; got != 2 {
		t.Errorf("%s.gzip = %d, want 2", obs.DriftWindowsCounter, got)
	}
	if got := tx.Metrics.Gauges[obs.DriftScoreGauge+".gzip"]; got < 0.9 {
		t.Errorf("%s.gzip = %.4f, want ~1", obs.DriftScoreGauge, got)
	}
	if got := tx.Metrics.Gauges[obs.DriftBaselineVersionGauge+".gzip"]; got != 3 {
		t.Errorf("%s.gzip = %v, want 3", obs.DriftBaselineVersionGauge, got)
	}
	if h, ok := tx.Metrics.Histograms[obs.DriftScoreHist]; !ok || h.Count != 2 {
		t.Errorf("%s count = %+v, want 2 observations", obs.DriftScoreHist, h)
	}
	kinds := make(map[string]int)
	for _, e := range tx.Events {
		kinds[e.Kind]++
	}
	if kinds[obs.DriftBaseline.String()] != 1 {
		t.Errorf("drift_baseline events = %d, want 1", kinds[obs.DriftBaseline.String()])
	}
	if kinds[obs.DriftWindow.String()] != 2 || kinds[obs.DriftScored.String()] != 2 {
		t.Errorf("window/scored events = %d/%d, want 2/2",
			kinds[obs.DriftWindow.String()], kinds[obs.DriftScored.String()])
	}
}

// TestTrackerConcurrent hammers one tracker from concurrent writers and
// readers — the daemon's ingest threads race its HTTP readers. Run under
// -race in scripts/verify.sh.
func TestTrackerConcurrent(t *testing.T) {
	rec := obs.NewRecorder()
	tr := NewTracker(Config{Window: 4, Ring: 16}, "p", rec)
	var base []hsd.HotSpot
	for i := 0; i < 8; i++ {
		base = append(base, spot(i, uint64(1000*i), pcRange(0x400, 8), 100, 90))
	}
	baselineFrom(t, tr, 1, base)

	const writers, perWriter = 16, 64
	var wg sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr.Observe(spot(i, uint64(wr*perWriter+i), pcRange(0x400, 8), 100, 90), 0)
			}
		}(wr)
	}
	for rd := 0; rd < 8; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				tr.Score()
				tr.Timeline()
				tr.Status()
			}
		}()
	}
	wg.Wait()
	st := tr.Status()
	if st.Samples != writers*perWriter {
		t.Fatalf("samples = %d, want %d", st.Samples, writers*perWriter)
	}
	if st.Windows != writers*perWriter/4 {
		t.Fatalf("windows = %d, want %d", st.Windows, writers*perWriter/4)
	}
	if len(tr.Timeline()) != 16 {
		t.Fatalf("timeline len = %d, want ring bound 16", len(tr.Timeline()))
	}
}

func TestEventRingCursor(t *testing.T) {
	r := NewEventRing(4)
	if ev, earliest, next := r.Since(0, 0); len(ev) != 0 || earliest != 0 || next != 0 {
		t.Fatalf("empty ring Since = %v, %d, %d", ev, earliest, next)
	}
	for i := 1; i <= 3; i++ {
		if seq := r.Append(StreamEvent{Kind: EventIngest, N: int64(i)}); seq != int64(i) {
			t.Fatalf("append %d assigned seq %d", i, seq)
		}
	}
	ev, earliest, next := r.Since(0, 0)
	if len(ev) != 3 || earliest != 1 || next != 3 {
		t.Fatalf("Since(0) = %d events, earliest %d, next %d", len(ev), earliest, next)
	}
	for i, e := range ev {
		if e.Seq != int64(i+1) || e.N != int64(i+1) {
			t.Fatalf("event %d = %+v", i, e)
		}
	}
	// Cursor resume: only the new events.
	r.Append(StreamEvent{Kind: EventWindow, N: 4})
	ev, _, next = r.Since(next, 0)
	if len(ev) != 1 || ev[0].N != 4 || next != 4 {
		t.Fatalf("resumed Since = %+v, next %d", ev, next)
	}
	// Overflow: ring of 4 keeps seqs 2..5; a stale cursor observes the gap
	// through earliest.
	r.Append(StreamEvent{Kind: EventWindow, N: 5})
	ev, earliest, next = r.Since(0, 0)
	if len(ev) != 4 || earliest != 2 || ev[0].Seq != 2 || next != 5 {
		t.Fatalf("overflowed Since = %d events, earliest %d, first %d, next %d",
			len(ev), earliest, ev[0].Seq, next)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	// Limit slices from the cursor forward.
	ev, _, next = r.Since(1, 2)
	if len(ev) != 2 || ev[0].Seq != 2 || next != 3 {
		t.Fatalf("limited Since = %+v, next %d", ev, next)
	}
}

func TestEventRingConcurrent(t *testing.T) {
	r := NewEventRing(64)
	const writers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Append(StreamEvent{Kind: EventIngest, Program: fmt.Sprint(w)})
			}
		}(w)
	}
	for rd := 0; rd < 4; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cursor int64
			for i := 0; i < 50; i++ {
				ev, _, next := r.Since(cursor, 16)
				for j := 1; j < len(ev); j++ {
					if ev[j].Seq != ev[j-1].Seq+1 {
						t.Errorf("non-contiguous seqs %d -> %d", ev[j-1].Seq, ev[j].Seq)
						return
					}
				}
				cursor = next
			}
		}()
	}
	wg.Wait()
	ev, _, _ := r.Since(0, 0)
	if len(ev) != 64 {
		t.Fatalf("retained %d events, want 64", len(ev))
	}
	if last := ev[len(ev)-1].Seq; last != writers*per {
		t.Fatalf("last seq = %d, want %d", last, writers*per)
	}
}
