package drift

import (
	"testing"

	"repro/internal/hsd"
	"repro/internal/obs"
	"repro/internal/phasedb"
)

// benchSpots synthesizes a rotating set of hot-spot records so the
// tracker's per-branch maps see realistic churn rather than one cached
// shape.
func benchSpots(n int) []hsd.HotSpot {
	spots := make([]hsd.HotSpot, n)
	for i := range spots {
		base := int64(0x1000 + 0x40*(i%4))
		spots[i] = spot(i, uint64(500*i), pcRange(base, 24), 300, 240)
	}
	return spots
}

// BenchmarkTrackerObserve measures the enabled drift path per ingested
// record: window aggregation plus the amortized close-and-score cost.
// scripts/bench.sh records it into BENCH_obs_overhead.json.
func BenchmarkTrackerObserve(b *testing.B) {
	tr := NewTracker(Config{Window: DefaultWindow, Ring: DefaultRing}, "bench", obs.Nop{})
	spots := benchSpots(64)
	db := phasedb.New(phasedb.Config{})
	for _, hs := range spots {
		db.Record(hs)
	}
	tr.SetBaseline(db.Snapshot(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Observe(spots[i%len(spots)], i%4)
	}
}

// BenchmarkTrackerObserveDisabled measures the disabled path — the cost
// a daemon run with -driftwindow 0 pays per record, which must stay
// within noise of not having the tracker at all.
func BenchmarkTrackerObserveDisabled(b *testing.B) {
	tr := NewTracker(Config{Window: 0, Ring: 0}, "bench", obs.Nop{})
	spots := benchSpots(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Observe(spots[i%len(spots)], i%4)
	}
}
