package workload

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Input names one benchmark input row of Table 1.
type Input struct {
	Name  string // "A", "B", "C"
	Scale int64  // iteration multiplier relative to the base script
	Seed  int64
}

// Benchmark is one named workload of the suite.
type Benchmark struct {
	Name string
	// Paper is the Table 1 row this workload stands in for.
	Paper  string
	Inputs []Input
	build  func(scale, seed int64) *prog.Program
}

// Build synthesizes the program for one input.
func (b *Benchmark) Build(in Input) *prog.Program {
	scale := in.Scale
	if scale <= 0 {
		scale = 1
	}
	seed := in.Seed
	if seed == 0 {
		seed = 0x1e3779b97f4a7c15
	}
	return b.build(scale, seed)
}

// InputByName finds an input row.
func (b *Benchmark) InputByName(name string) (Input, error) {
	for _, in := range b.Inputs {
		if in.Name == name {
			return in, nil
		}
	}
	return Input{}, fmt.Errorf("workload: %s has no input %q", b.Name, name)
}

var registry = map[string]*Benchmark{}

func register(b *Benchmark) {
	if _, dup := registry[b.Name]; dup {
		panic("workload: duplicate benchmark " + b.Name)
	}
	registry[b.Name] = b
}

// ByName returns a registered benchmark.
func ByName(name string) (*Benchmark, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return b, nil
}

// All returns the suite sorted by name.
func All() []*Benchmark {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Benchmark, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// Ordered returns the suite in the paper's Table 1 order.
func Ordered() []*Benchmark {
	order := []string{
		"go", "m88ksim", "li", "ijpeg", "gzip", "vpr", "mcf",
		"perl", "vortex", "parser", "twolf", "mpeg2dec",
	}
	out := make([]*Benchmark, 0, len(order))
	for _, n := range order {
		if b, ok := registry[n]; ok {
			out = append(out, b)
		}
	}
	return out
}

func inputs(scales ...int64) []Input {
	names := []string{"A", "B", "C"}
	out := make([]Input, len(scales))
	for i, s := range scales {
		out[i] = Input{Name: names[i], Scale: s, Seed: int64(0x1234567+i*7919) | 1}
	}
	return out
}

func init() {
	register(&Benchmark{Name: "go", Paper: "099.go (SPEC Train)", Inputs: inputs(2), build: buildGo})
	register(&Benchmark{Name: "m88ksim", Paper: "124.m88ksim (SPEC Train)", Inputs: inputs(1), build: buildM88ksim})
	register(&Benchmark{Name: "li", Paper: "130.li (Train / 6 Queens / Reduced Ref)", Inputs: inputs(1, 1, 2), build: buildLi})
	register(&Benchmark{Name: "ijpeg", Paper: "132.ijpeg (Train / Faces / Scenery)", Inputs: inputs(2, 1, 1), build: buildIjpeg})
	register(&Benchmark{Name: "gzip", Paper: "164.gzip (SPEC Train)", Inputs: inputs(2), build: buildGzip})
	register(&Benchmark{Name: "vpr", Paper: "175.vpr (SPEC Test)", Inputs: inputs(2), build: buildVpr})
	register(&Benchmark{Name: "mcf", Paper: "181.mcf (SPEC Test)", Inputs: inputs(1), build: buildMcf})
	register(&Benchmark{Name: "perl", Paper: "134.perl (Train 1/2/3)", Inputs: inputs(2, 1, 1), build: buildPerl})
	register(&Benchmark{Name: "vortex", Paper: "255.vortex (UMN_sm_red / UMN_md_red)", Inputs: inputs(1, 2), build: buildVortex})
	register(&Benchmark{Name: "parser", Paper: "197.parser (UMN_sm_red)", Inputs: inputs(1), build: buildParser})
	register(&Benchmark{Name: "twolf", Paper: "300.twolf (UMN_sm_red)", Inputs: inputs(1), build: buildTwolf})
	register(&Benchmark{Name: "mpeg2dec", Paper: "mpeg2dec (Media Train)", Inputs: inputs(1), build: buildMpeg2dec})
}

// Every benchmark follows the architecture real post-link targets have:
//
//   - one or more *driver* functions own the hot outer loop and call the
//     phase's worker functions. Packages root at the drivers and partially
//     inline the workers, so side exits from inlined code return into the
//     package through the materialized return address;
//   - workers run a short inner loop with data-driven decision diamonds and
//     *sporadic* calls (gate probability below the Hot-arc weight
//     threshold) into straight-line cold bodies — the dynamic cold tail
//     that keeps coverage below 100%;
//   - a bulk "library" of never-hot functions supplies the static code mass
//     that makes Table 3's selected-fraction realistic, and an init call
//     pays a one-time cold startup cost.

// coldTail builds n sporadic cold bodies and returns gated callees for
// them. Gates stay well below the Hot-arc weight threshold so the calls
// remain package exits, and splitting the tail across several bodies keeps
// each body's branches below BBB candidacy.
func coldTail(w *W, prefix string, n, size int, gate int64, arr, words int64) []Callee {
	out := make([]Callee, n)
	for i := range out {
		out[i] = Callee{
			Fn:   w.ColdBody(fmt.Sprintf("%s%d", prefix, i), size, arr, words),
			Gate: w.NewParam(gate),
		}
	}
	return out
}

// --- individual benchmark builders -----------------------------------------

// buildGo models 099.go: a wide evaluator set with a large static branch
// working set and two phases (opening vs. endgame) weighting the
// evaluators differently.
func buildGo(scale, seed int64) *prog.Program {
	w := NewW()
	arr := w.NewArray(1024)
	arr2 := w.NewArray(1024)
	lib := w.Bulk("golib", 22, 260, arr2, 1024)

	var evals []*prog.Func
	for i := 0; i < 5; i++ {
		tail := coldTail(w, fmt.Sprintf("gorare%d_", i), 3, 1200, 13, arr2, 1024)
		evals = append(evals, w.Worker(fmt.Sprintf("eval%d", i), FuncOpts{
			Decisions: []Param{w.NewParam(500), w.NewParam(300), w.NewParam(700)},
			ArrayA:    arr, ArrayB: arr2, ArrayWords: 1024, ALUWork: 2,
			Callees:   tail,
			IterParam: w.NewParam(3),
		}))
	}
	gates := make([]Param, len(evals))
	callees := make([]Callee, len(evals))
	for i, e := range evals {
		gates[i] = w.NewParam(500)
		callees[i] = Callee{Fn: e, Gate: gates[i]}
	}
	drvIt := w.NewParam(0)
	search := w.Worker("search", FuncOpts{
		Decisions: []Param{w.NewParam(600)},
		ArrayA:    arr, ArrayB: arr2, ArrayWords: 1024, ALUWork: 1,
		Callees: callees, IterParam: drvIt,
	})

	n := 900 * scale
	w.MainOf([][]PhaseStep{
		append([]PhaseStep{CallF(lib),
			SetP(gates[0], 950), SetP(gates[1], 900), SetP(gates[2], 120),
			SetP(gates[3], 80), SetP(gates[4], 60)},
			w.DriverBurst(drvIt, n, search)...),
		append([]PhaseStep{SetP(gates[0], 70), SetP(gates[1], 100), SetP(gates[2], 930),
			SetP(gates[3], 900), SetP(gates[4], 860)},
			w.DriverBurst(drvIt, n, search)...),
	})
	return w.Finish(seed)
}

// buildM88ksim models 124.m88ksim: a simulator root whose two phases —
// loading a binary, then simulating it — share one launch point with
// flipped path biases; package linking is what makes the second phase's
// package reachable (§5.1).
func buildM88ksim(scale, seed int64) *prog.Program {
	w := NewW()
	arr := w.NewArray(512)
	arr2 := w.NewArray(512)
	lib := w.Bulk("simlib", 20, 280, arr, 512)

	loader := w.Worker("loadword", FuncOpts{
		Decisions: []Param{w.NewParam(850), w.NewParam(100), w.NewParam(640), w.NewParam(320)},
		ArrayA:    arr, ArrayB: arr2, ArrayWords: 512, ALUWork: 2,
		Callees:   coldTail(w, "reloc", 1, 600, 9, arr2, 512),
		IterParam: w.NewParam(3),
	})
	executor := w.Worker("execinst", FuncOpts{
		Decisions: []Param{w.NewParam(200), w.NewParam(900), w.NewParam(420), w.NewParam(760)},
		ArrayA:    arr2, ArrayB: arr, ArrayWords: 512, ALUWork: 3,
		Callees:   coldTail(w, "trap", 1, 600, 9, arr, 512),
		IterParam: w.NewParam(3),
	})

	gLoad, gExec := w.NewParam(0), w.NewParam(0)
	mode := w.NewParam(500)
	rootIt := w.NewParam(0)
	root := w.Worker("simulate", FuncOpts{
		Decisions: []Param{mode},
		ArrayA:    arr, ArrayB: arr2, ArrayWords: 512, ALUWork: 1,
		Callees:   []Callee{{Fn: loader, Gate: gLoad}, {Fn: executor, Gate: gExec}},
		IterParam: rootIt,
	})

	n := 1300 * scale
	w.MainOf([][]PhaseStep{
		append([]PhaseStep{CallF(lib),
			SetP(gLoad, 1000), SetP(gExec, 0), SetP(mode, 920)},
			w.DriverBurst(rootIt, n, root)...),
		append([]PhaseStep{SetP(gLoad, 0), SetP(gExec, 1000), SetP(mode, 70)},
			w.DriverBurst(rootIt, 2*n, root)...),
	})
	return w.Finish(seed)
}

// buildLi models 130.li's weak-caller pathology (§5.1): `eval` is hot and
// gets inlined into the one caller hot enough to be detected; the weak
// callers' invocations keep running original code, costing ~10% coverage.
func buildLi(scale, seed int64) *prog.Program {
	w := NewW()
	arr := w.NewArray(256)
	arr2 := w.NewArray(256)
	lib := w.Bulk("lilib", 18, 260, arr, 256)

	// eval is heavy per call so the weak callers' traffic is a real slice
	// of execution even though each weak caller only runs a handful of
	// times per BBB window.
	eval := w.Worker("eval", FuncOpts{
		Decisions: []Param{w.NewParam(750), w.NewParam(300), w.NewParam(500)},
		ArrayA:    arr, ArrayB: arr2, ArrayWords: 256, ALUWork: 2,
		Callees:   coldTail(w, "gc", 1, 500, 9, arr2, 256),
		IterParam: w.NewParam(6),
	})
	always := w.NewParam(1000)
	hotIt := w.NewParam(0)
	hot := w.Worker("applyhot", FuncOpts{
		Decisions: []Param{w.NewParam(800)},
		ArrayA:    arr, ArrayB: arr2, ArrayWords: 256, ALUWork: 1,
		Callees:   []Callee{{Fn: eval, Gate: always}},
		IterParam: hotIt,
	})
	// Weak callers: straight-line wrappers that call eval exactly once, so
	// their own branches execute far too rarely for BBB candidacy no
	// matter how the slices align with detection windows (§5.1's 130.li).
	bd := w.BD
	mkWeak := func(name string) *prog.Func {
		fn := bd.Func(name)
		bd.OpI(isa.ADDI, isa.RSP, isa.RSP, -16)
		bd.St(isa.RRA, isa.RSP, 0)
		w.ArrayTouch(arr2, 256, 2)
		w.Accumulate()
		cont := bd.NewBlock()
		bd.Call(eval, cont)
		bd.SetBlock(cont)
		bd.Ld(isa.RRA, isa.RSP, 0)
		bd.OpI(isa.ADDI, isa.RSP, isa.RSP, 16)
		bd.Ret()
		return fn
	}
	weak1 := mkWeak("applyweak1")
	weak2 := mkWeak("applyweak2")
	weak3 := mkWeak("applyweak3")

	n := 16 * scale
	script := []PhaseStep{CallF(lib)}
	for i := int64(0); i < 24; i++ {
		script = append(script,
			SetP(hotIt, n), CallF(hot),
			CallF(weak1), CallF(weak2),
			SetP(hotIt, n), CallF(hot),
			CallF(weak3),
		)
	}
	w.MainOf([][]PhaseStep{script})
	return w.Finish(seed)
}

// buildIjpeg models 132.ijpeg: a three-stage pipeline (DCT, quantization,
// entropy coding) where each stage dominates its own phase; the stages
// have separate drivers, so packages are disjoint and coverage is high in
// every configuration.
func buildIjpeg(scale, seed int64) *prog.Program {
	w := NewW()
	arr := w.NewArray(2048)
	arr2 := w.NewArray(2048)
	lib := w.Bulk("jpglib", 24, 280, arr, 2048)

	mkStage := func(name string, fp bool, d1, d2 int64) (*prog.Func, Param) {
		work := w.Worker(name, FuncOpts{
			Decisions: []Param{w.NewParam(d1), w.NewParam(d2)},
			ArrayA:    arr, ArrayB: arr2, ArrayWords: 2048, ALUWork: 2, FP: fp,
			Callees:   coldTail(w, name+"marker", 1, 700, 9, arr2, 2048),
			IterParam: w.NewParam(3),
		})
		it := w.NewParam(0)
		drv := w.Worker(name+"drv", FuncOpts{
			ArrayA: arr, ArrayB: arr2, ArrayWords: 2048, ALUWork: 1,
			Callees:   []Callee{{Fn: work, Gate: w.NewParam(1000)}},
			IterParam: it,
		})
		return drv, it
	}
	dct, dctIt := mkStage("dct", true, 900, 850)
	quant, quantIt := mkStage("quant", false, 150, 500)
	enc, encIt := mkStage("encode", false, 650, 350)

	n := 1100 * scale
	w.MainOf([][]PhaseStep{
		append([]PhaseStep{CallF(lib)},
			w.DriverBurst(dctIt, n, dct)...),
		w.DriverBurst(quantIt, n, quant),
		w.DriverBurst(encIt, n, enc),
	})
	return w.Finish(seed)
}

// buildGzip models 164.gzip: compress and decompress phases sharing a hot
// checksum helper, with an unbiased match-finding branch in the compressor.
func buildGzip(scale, seed int64) *prog.Program {
	w := NewW()
	arr := w.NewArray(4096)
	arr2 := w.NewArray(4096)
	lib := w.Bulk("zliblib", 20, 300, arr, 4096)

	crc := w.Worker("crc32", FuncOpts{
		Decisions: []Param{w.NewParam(500)},
		ArrayA:    arr, ArrayB: arr2, ArrayWords: 4096, ALUWork: 1,
		IterParam: w.NewParam(2),
	})
	always := w.NewParam(1000)
	deflate := w.Worker("deflate", FuncOpts{
		Decisions: []Param{w.NewParam(480), w.NewParam(700), w.NewParam(250)},
		ArrayA:    arr, ArrayB: arr2, ArrayWords: 4096, ALUWork: 2,
		Callees: append([]Callee{{Fn: crc, Gate: always}},
			coldTail(w, "flushblock", 2, 900, 11, arr2, 4096)...),
		IterParam: w.NewParam(3),
	})
	inflate := w.Worker("inflate", FuncOpts{
		Decisions: []Param{w.NewParam(880), w.NewParam(120)},
		ArrayA:    arr2, ArrayB: arr, ArrayWords: 4096, ALUWork: 1,
		Callees: append([]Callee{{Fn: crc, Gate: always}},
			coldTail(w, "huffbuild", 1, 900, 11, arr, 4096)...),
		IterParam: w.NewParam(3),
	})
	gDef, gInf := w.NewParam(0), w.NewParam(0)
	it := w.NewParam(0)
	zdrv := w.Worker("zipmain", FuncOpts{
		ArrayA: arr, ArrayB: arr2, ArrayWords: 4096, ALUWork: 1,
		Callees:   []Callee{{Fn: deflate, Gate: gDef}, {Fn: inflate, Gate: gInf}},
		IterParam: it,
	})

	n := 1000 * scale
	w.MainOf([][]PhaseStep{
		append([]PhaseStep{CallF(lib), SetP(gDef, 1000), SetP(gInf, 0)},
			w.DriverBurst(it, n, zdrv)...),
		append([]PhaseStep{SetP(gDef, 0), SetP(gInf, 1000)},
			w.DriverBurst(it, 2*n, zdrv)...),
	})
	return w.Finish(seed)
}

// buildVpr models 175.vpr: place then route phases with nested rare
// branches that miss BBB candidacy although their surroundings are hot —
// the workload where temperature inference visibly lifts coverage (§5.1).
func buildVpr(scale, seed int64) *prog.Program {
	w := NewW()
	arr := w.NewArray(2048)
	arr2 := w.NewArray(2048)
	lib := w.Bulk("vprlib", 22, 280, arr, 2048)
	guardP := w.NewParam(15) // 1.5% fixup rate on every guard

	// Guard-dense workers give vpr's phases a branch working set large
	// enough to contend for BBB sets — the situation where temperature
	// inference visibly lifts coverage (§5.1).
	mkW := func(name string, d1, d2, d3 int64, a, b int64) *prog.Func {
		return w.Worker(name, FuncOpts{
			Decisions: []Param{w.NewParam(d1), w.NewParam(d2), w.NewParam(d3)},
			Nested:    []Param{w.NewParam(500)},
			Guards:    32, GuardProb: guardP,
			ArrayA: a, ArrayB: b, ArrayWords: 2048, ALUWork: 1,
			Callees:   coldTail(w, name+"rip", 1, 800, 10, arr2, 2048),
			IterParam: w.NewParam(1),
		})
	}
	placers := []*prog.Func{
		mkW("placemove", 600, 400, 750, arr, arr2),
		mkW("placecost", 550, 320, 810, arr2, arr),
		mkW("placeswap", 480, 700, 240, arr, arr2),
		mkW("placeanneal", 660, 380, 520, arr2, arr),
	}
	routers := []*prog.Func{
		mkW("routenet", 820, 180, 550, arr2, arr),
		mkW("routeexpand", 740, 260, 480, arr, arr2),
		mkW("routecost", 380, 640, 590, arr2, arr),
		mkW("routeback", 560, 440, 700, arr, arr2),
	}
	var callees []Callee
	var gP, gR []Param
	for _, f := range placers {
		g := w.NewParam(0)
		gP = append(gP, g)
		callees = append(callees, Callee{Fn: f, Gate: g})
	}
	for _, f := range routers {
		g := w.NewParam(0)
		gR = append(gR, g)
		callees = append(callees, Callee{Fn: f, Gate: g})
	}
	it := w.NewParam(0)
	drv := w.Worker("vprmain", FuncOpts{
		ArrayA: arr, ArrayB: arr2, ArrayWords: 2048, ALUWork: 1,
		Callees:   callees,
		IterParam: it,
	})

	n := 420 * scale
	ph1 := []PhaseStep{CallF(lib)}
	ph2 := []PhaseStep{}
	for _, g := range gP {
		ph1 = append(ph1, SetP(g, 1000))
		ph2 = append(ph2, SetP(g, 0))
	}
	for _, g := range gR {
		ph1 = append(ph1, SetP(g, 0))
		ph2 = append(ph2, SetP(g, 1000))
	}
	ph1 = append(ph1, w.DriverBurst(it, n, drv)...)
	ph2 = append(ph2, w.DriverBurst(it, n, drv)...)
	w.MainOf([][]PhaseStep{ph1, ph2})
	return w.Finish(seed)
}

// buildMcf models 181.mcf: a network-simplex loop over large arrays whose
// pricing mode flips between phases while the loop skeleton — and launch
// point — stays the same: the clean linking-benefit case.
func buildMcf(scale, seed int64) *prog.Program {
	w := NewW()
	arr := w.NewArray(16384)
	arr2 := w.NewArray(16384)
	lib := w.Bulk("mcflib", 16, 300, arr, 16384)

	m1, m2, m3, m4 := w.NewParam(500), w.NewParam(500), w.NewParam(500), w.NewParam(500)
	price := w.Worker("pricearcs", FuncOpts{
		Decisions: []Param{m1, m2, m3, m4},
		ArrayA:    arr, ArrayB: arr2, ArrayWords: 16384, ALUWork: 2,
		Callees:   coldTail(w, "refreshtree", 1, 700, 9, arr2, 16384),
		IterParam: w.NewParam(3),
	})
	it := w.NewParam(0)
	simplex := w.Worker("simplex", FuncOpts{
		ArrayA: arr, ArrayB: arr2, ArrayWords: 16384, ALUWork: 1,
		Callees:   []Callee{{Fn: price, Gate: w.NewParam(1000)}},
		IterParam: it,
	})

	n := 1300 * scale
	w.MainOf([][]PhaseStep{
		append([]PhaseStep{CallF(lib), SetP(m1, 900), SetP(m2, 120), SetP(m3, 840), SetP(m4, 200)},
			w.DriverBurst(it, n, simplex)...),
		append([]PhaseStep{SetP(m1, 100), SetP(m2, 880), SetP(m3, 160), SetP(m4, 800)},
			w.DriverBurst(it, n, simplex)...),
	})
	return w.Finish(seed)
}

// buildPerl models 134.perl: a command-interpreter dispatcher whose phases
// shift the command mix; several packages share the dispatcher root — the
// paper's §3.3.4 running example.
func buildPerl(scale, seed int64) *prog.Program {
	w := NewW()
	arr := w.NewArray(1024)
	arr2 := w.NewArray(1024)
	lib := w.Bulk("perllib", 24, 280, arr, 1024)

	mk := func(name string, d1v, d2v int64, tails int) *prog.Func {
		return w.Worker(name, FuncOpts{
			Decisions: []Param{w.NewParam(d1v), w.NewParam(d2v)},
			ArrayA:    arr, ArrayB: arr2, ArrayWords: 1024, ALUWork: 2,
			Callees:   coldTail(w, name+"cold", tails, 1000, 12, arr2, 1024),
			IterParam: w.NewParam(3),
		})
	}
	hStr := mk("dostring", 800, 300, 2)
	hNum := mk("donumeric", 200, 700, 1)
	hIO := mk("doio", 550, 450, 2)

	cut1, cut2 := w.NewParam(333), w.NewParam(666)
	iters := w.NewParam(0)
	interp := w.Dispatcher("interp", iters, []Param{cut1, cut2}, []*prog.Func{hStr, hNum, hIO})

	n := 1100 * scale
	w.MainOf([][]PhaseStep{
		append([]PhaseStep{CallF(lib), SetP(cut1, 900), SetP(cut2, 950)},
			w.DriverBurst(iters, n, interp)...),
		append([]PhaseStep{SetP(cut1, 50), SetP(cut2, 900)},
			w.DriverBurst(iters, n, interp)...),
		append([]PhaseStep{SetP(cut1, 50), SetP(cut2, 100)},
			w.DriverBurst(iters, n, interp)...),
	})
	return w.Finish(seed)
}

// buildVortex models 255.vortex: an object store with insert, lookup and
// delete phases over shared access helpers.
func buildVortex(scale, seed int64) *prog.Program {
	w := NewW()
	arr := w.NewArray(8192)
	arr2 := w.NewArray(8192)
	lib := w.Bulk("vtxlib", 26, 300, arr, 8192)

	hash := w.Worker("hashkey", FuncOpts{
		Decisions: []Param{w.NewParam(500)},
		ArrayA:    arr, ArrayB: arr2, ArrayWords: 8192, ALUWork: 1,
		IterParam: w.NewParam(2),
	})
	always := w.NewParam(1000)
	mkOp := func(name string, b1, b2 int64, tails int) *prog.Func {
		return w.Worker(name, FuncOpts{
			Decisions: []Param{w.NewParam(b1), w.NewParam(b2)},
			ArrayA:    arr, ArrayB: arr2, ArrayWords: 8192, ALUWork: 2,
			Callees: append([]Callee{{Fn: hash, Gate: always}},
				coldTail(w, name+"cold", tails, 1200, 12, arr2, 8192)...),
			IterParam: w.NewParam(3),
		})
	}
	ins := mkOp("insert", 850, 200, 3)
	look := mkOp("lookup", 300, 900, 2)
	del := mkOp("delete", 600, 400, 3)

	gI, gL, gD := w.NewParam(0), w.NewParam(0), w.NewParam(0)
	it := w.NewParam(0)
	drv := w.Worker("dbmain", FuncOpts{
		ArrayA: arr, ArrayB: arr2, ArrayWords: 8192, ALUWork: 1,
		Callees:   []Callee{{Fn: ins, Gate: gI}, {Fn: look, Gate: gL}, {Fn: del, Gate: gD}},
		IterParam: it,
	})

	n := 700 * scale
	w.MainOf([][]PhaseStep{
		append([]PhaseStep{CallF(lib), SetP(gI, 1000), SetP(gL, 80), SetP(gD, 0)},
			w.DriverBurst(it, n, drv)...),
		append([]PhaseStep{SetP(gI, 60), SetP(gL, 1000), SetP(gD, 0)},
			w.DriverBurst(it, 2*n, drv)...),
		append([]PhaseStep{SetP(gI, 0), SetP(gL, 100), SetP(gD, 1000)},
			w.DriverBurst(it, n, drv)...),
	})
	return w.Finish(seed)
}

// buildParser models 197.parser: a tokenizing dispatcher phase followed by
// a recursive evaluation phase. The recursive evaluator forces a
// self-recursive package root; the shared dispatcher gives linking a
// coverage win (§5.1).
func buildParser(scale, seed int64) *prog.Program {
	w := NewW()
	arr := w.NewArray(1024)
	arr2 := w.NewArray(1024)
	lib := w.Bulk("parselib", 20, 280, arr, 1024)
	depthAddr := w.NewArray(1)

	rec := w.Recursive("evalrec", depthAddr, w.NewParam(700), arr, 1024)

	mkTok := func(name string, b1 int64) *prog.Func {
		return w.Worker(name, FuncOpts{
			Decisions: []Param{w.NewParam(b1), w.NewParam(550)},
			ArrayA:    arr, ArrayB: arr2, ArrayWords: 1024, ALUWork: 1,
			Callees:   coldTail(w, "spell"+name, 1, 900, 11, arr2, 1024),
			IterParam: w.NewParam(3),
		})
	}
	tokWord := mkTok("tokword", 780)
	tokPunct := mkTok("tokpunct", 240)
	// evalstep drives the recursive evaluator: sets the depth word, calls.
	evalStep := w.Worker("evalstep", FuncOpts{
		Decisions: []Param{w.NewParam(680)},
		ArrayA:    arr, ArrayB: arr2, ArrayWords: 1024, ALUWork: 1,
		Callees:   []Callee{{Fn: rec, Gate: w.NewParam(1000)}},
		IterParam: w.NewParam(1),
		PreStore:  &PreStore{From: w.NewParam(4), To: depthAddr},
	})
	cut1, cut2 := w.NewParam(450), w.NewParam(900)
	iters := w.NewParam(0)
	parse := w.Dispatcher("parse", iters, []Param{cut1, cut2},
		[]*prog.Func{tokWord, tokPunct, evalStep})

	n := 1000 * scale
	w.MainOf([][]PhaseStep{
		append([]PhaseStep{CallF(lib), SetP(cut1, 700), SetP(cut2, 980)},
			w.DriverBurst(iters, n, parse)...),
		append([]PhaseStep{SetP(cut1, 60), SetP(cut2, 120)},
			w.DriverBurst(iters, n, parse)...),
	})
	return w.Finish(seed)
}

// buildTwolf models 300.twolf: two simulated-annealing stages whose accept
// rates drift between phases (Multi Low branches) over a sizable branch
// working set with nested rare paths.
func buildTwolf(scale, seed int64) *prog.Program {
	w := NewW()
	arr := w.NewArray(4096)
	arr2 := w.NewArray(4096)
	lib := w.Bulk("twlib", 22, 280, arr, 4096)

	guardP := w.NewParam(14)
	accept := w.NewParam(500) // drifts 650 -> 250 between phases
	swap := w.NewParam(500)
	mkStage := func(name string, d3 int64, a, b int64) *prog.Func {
		return w.Worker(name, FuncOpts{
			Decisions: []Param{accept, swap, w.NewParam(d3)},
			Nested:    []Param{w.NewParam(400)},
			Guards:    30, GuardProb: guardP,
			ArrayA: a, ArrayB: b, ArrayWords: 4096, ALUWork: 1,
			Callees:   coldTail(w, name+"fix", 1, 1000, 11, arr2, 4096),
			IterParam: w.NewParam(1),
		})
	}
	stages := []*prog.Func{
		mkStage("annealmove", 720, arr, arr2),
		mkStage("annealcost", 310, arr2, arr),
		mkStage("annealwire", 580, arr, arr2),
		mkStage("annealnet", 460, arr2, arr),
	}
	gPen := w.NewParam(0)
	penalty := w.Worker("penalty", FuncOpts{
		Decisions: []Param{w.NewParam(300), w.NewParam(820)},
		ArrayA:    arr2, ArrayB: arr, ArrayWords: 4096, ALUWork: 2,
		IterParam: w.NewParam(2),
	})
	callees := []Callee{{Fn: penalty, Gate: gPen}}
	for _, s := range stages {
		callees = append(callees, Callee{Fn: s, Gate: w.NewParam(1000)})
	}
	it := w.NewParam(0)
	drv := w.Worker("twmain", FuncOpts{
		ArrayA: arr, ArrayB: arr2, ArrayWords: 4096, ALUWork: 1,
		Callees:   callees,
		IterParam: it,
	})

	n := 420 * scale
	w.MainOf([][]PhaseStep{
		append([]PhaseStep{CallF(lib), SetP(accept, 650), SetP(swap, 800), SetP(gPen, 120)},
			w.DriverBurst(it, n, drv)...),
		append([]PhaseStep{SetP(accept, 250), SetP(swap, 300), SetP(gPen, 900)},
			w.DriverBurst(it, n, drv)...),
	})
	return w.Finish(seed)
}

// buildMpeg2dec models mpeg2dec: a frame-decode loop whose I-frame phase
// leans on an FP IDCT kernel and whose P-frame phase leans on motion
// compensation, both reached from the same decode root.
func buildMpeg2dec(scale, seed int64) *prog.Program {
	w := NewW()
	arr := w.NewArray(2048)
	arr2 := w.NewArray(2048)
	lib := w.Bulk("mpglib", 18, 280, arr, 2048)

	idct := w.Worker("idct", FuncOpts{
		Decisions: []Param{w.NewParam(880), w.NewParam(340)},
		ArrayA:    arr, ArrayB: arr2, ArrayWords: 2048, ALUWork: 2, FP: true,
		Callees:   coldTail(w, "seqheader", 1, 700, 9, arr2, 2048),
		IterParam: w.NewParam(3),
	})
	motion := w.Worker("motioncomp", FuncOpts{
		Decisions: []Param{w.NewParam(460), w.NewParam(240)},
		ArrayA:    arr2, ArrayB: arr, ArrayWords: 2048, ALUWork: 2,
		Callees:   coldTail(w, "gopheader", 1, 700, 9, arr, 2048),
		IterParam: w.NewParam(3),
	})
	gI, gP := w.NewParam(0), w.NewParam(0)
	it := w.NewParam(0)
	decode := w.Worker("decodeframe", FuncOpts{
		Decisions: []Param{w.NewParam(500)},
		ArrayA:    arr, ArrayB: arr2, ArrayWords: 2048, ALUWork: 1,
		Callees:   []Callee{{Fn: idct, Gate: gI}, {Fn: motion, Gate: gP}},
		IterParam: it,
	})

	n := 1000 * scale
	w.MainOf([][]PhaseStep{
		append([]PhaseStep{CallF(lib), SetP(gI, 1000), SetP(gP, 120)},
			w.DriverBurst(it, n, decode)...),
		append([]PhaseStep{SetP(gI, 120), SetP(gP, 1000)},
			w.DriverBurst(it, 2*n, decode)...),
	})
	return w.Finish(seed)
}
