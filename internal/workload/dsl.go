// Package workload synthesizes the benchmark programs the reproduction
// evaluates. The paper used IMPACT-compiled SPEC CPU95/2000 and MediaBench
// binaries; those are unavailable, so each named benchmark here is a VPIR
// program whose *structure* reproduces the phenomena the paper measures:
// distinct execution phases, data-driven branch biases that differ between
// phases, hot paths spanning function and (simulated) library boundaries,
// shared root functions across phases, self-recursion, and working sets
// that stress the Branch Behavior Buffer.
//
// Branch outcomes are genuinely data-driven: every decision site draws from
// an in-program linear congruential generator and compares against a
// threshold read from a parameter table in the data segment. The program's
// main function rewrites the parameter table between phases, so the same
// static code exhibits different branch biases per phase — exactly the
// behavior Vacuum Packing specializes for.
package workload

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Data segment layout (word addresses relative to prog.DataBase).
const (
	rngSlot    = 0    // LCG state
	paramBase  = 8    // parameter table: 8 bytes per parameter
	paramCount = 480  // max parameters
	arrayBase  = 4096 // work arrays start here
	resultSlot = arrayBase - 8
)

// Param is a parameter-table slot whose value main rewrites per phase.
type Param int

func (p Param) addr() int64 {
	return prog.DataBase + paramBase + int64(p)*8
}

// Register conventions inside generated code. All generated functions may
// clobber r16..r27; persistent state lives on the stack.
const (
	rTmp0 = isa.Reg(20)
	rTmp1 = isa.Reg(21)
	rTmp2 = isa.Reg(22)
	rTmp3 = isa.Reg(23)
	rTmp4 = isa.Reg(24)
	rTmp5 = isa.Reg(25)
	rTmp6 = isa.Reg(26)
	rTmp7 = isa.Reg(27)
)

// W wraps a prog.Builder with workload-specific emitters.
type W struct {
	BD *prog.Builder

	nextParam  int
	nextArray  int64 // next free byte offset past arrayBase
	paramInits map[Param]int64
	sessions   map[*prog.Func]session
}

// NewW returns a fresh workload writer.
func NewW() *W {
	return &W{
		BD:         prog.NewBuilder(),
		paramInits: make(map[Param]int64),
		sessions:   make(map[*prog.Func]session),
	}
}

// NewParam allocates a parameter slot with an initial value.
func (w *W) NewParam(init int64) Param {
	if w.nextParam >= paramCount {
		panic("workload: parameter table exhausted")
	}
	p := Param(w.nextParam)
	w.nextParam++
	w.paramInits[p] = init
	return p
}

// NewArray reserves a work array of n words and returns its byte address.
func (w *W) NewArray(n int64) int64 {
	addr := prog.DataBase + arrayBase + w.nextArray
	w.nextArray += n * 8
	return addr
}

// Finish installs the data segment (RNG seed, parameter defaults) and
// returns the completed program.
func (w *W) Finish(seed int64) *prog.Program {
	words := int((paramBase + int64(w.nextParam)*8) / 8)
	data := make([]int64, words)
	data[rngSlot/8] = seed
	for p, v := range w.paramInits {
		data[(paramBase+int64(p)*8)/8] = v
	}
	w.BD.P.Data = data
	return w.BD.P
}

// Rand emits code leaving a pseudo-random value in [0,1000) in rd. It
// advances the shared LCG in the data segment (rd must not be rTmp7).
func (w *W) Rand(rd isa.Reg) {
	bd := w.BD
	bd.Ld(rTmp7, isa.R0, prog.DataBase+rngSlot)
	bd.OpI(isa.MULI, rTmp7, rTmp7, 6364136223846793005)
	bd.OpI(isa.ADDI, rTmp7, rTmp7, 1442695040888963407)
	bd.St(rTmp7, isa.R0, prog.DataBase+rngSlot)
	bd.OpI(isa.SHRI, rd, rTmp7, 33)
	bd.OpI(isa.ANDI, rd, rd, (1<<20)-1)
	bd.Li(rTmp7, 1000)
	bd.Op3(isa.REM, rd, rd, rTmp7)
}

// BranchOnParam seals the current block with a branch whose taken
// probability is (param value)/1000, drawn from the LCG.
func (w *W) BranchOnParam(p Param, taken, fall *prog.Block) {
	bd := w.BD
	w.Rand(rTmp5)
	bd.Ld(rTmp6, isa.R0, p.addr())
	bd.Branch(isa.BLT, rTmp5, rTmp6, taken, fall)
}

// LoadParam emits a load of a parameter value into rd.
func (w *W) LoadParam(rd isa.Reg, p Param) {
	w.BD.Ld(rd, isa.R0, p.addr())
}

// ArrayTouch emits a read-modify-write of a pseudo-random element of the
// array at base with n words: the memory traffic of real workloads.
func (w *W) ArrayTouch(base, n int64, extraALU int) {
	bd := w.BD
	w.Rand(rTmp4)
	bd.Li(rTmp3, n)
	bd.Op3(isa.REM, rTmp4, rTmp4, rTmp3)
	bd.OpI(isa.SHLI, rTmp4, rTmp4, 3)
	bd.OpI(isa.ADDI, rTmp4, rTmp4, base)
	bd.Ld(rTmp3, rTmp4, 0)
	for i := 0; i < extraALU; i++ {
		switch i % 3 {
		case 0:
			bd.OpI(isa.ADDI, rTmp3, rTmp3, int64(i)+1)
		case 1:
			bd.OpI(isa.XORI, rTmp3, rTmp3, 0x5a5a)
		case 2:
			bd.OpI(isa.MULI, rTmp3, rTmp3, 3)
		}
	}
	bd.St(rTmp3, rTmp4, 0)
}

// FPWork emits a short floating-point kernel (for media/FP-flavored
// benchmarks).
func (w *W) FPWork(units int) {
	bd := w.BD
	bd.Emit(prog.Ins{Inst: isa.Inst{Op: isa.FCVTIF, Rd: isa.F(1), Rs1: rTmp3}})
	for i := 0; i < units; i++ {
		switch i % 3 {
		case 0:
			bd.Op3(isa.FMUL, isa.F(2), isa.F(1), isa.F(1))
		case 1:
			bd.Op3(isa.FADD, isa.F(1), isa.F(2), isa.F(1))
		case 2:
			bd.Op3(isa.FSUB, isa.F(2), isa.F(2), isa.F(1))
		}
	}
	bd.Emit(prog.Ins{Inst: isa.Inst{Op: isa.FCVTFI, Rd: rTmp3, Rs1: isa.F(2)}})
	bd.OpI(isa.ANDI, rTmp3, rTmp3, 0xffff)
	bd.St(rTmp3, isa.R0, prog.DataBase+resultSlot)
}

// Accumulate folds rTmp3 into the global result word so computed values are
// architecturally observable (feeding the equivalence hash).
func (w *W) Accumulate() {
	bd := w.BD
	bd.Ld(rTmp2, isa.R0, prog.DataBase+resultSlot)
	bd.Op3(isa.XOR, rTmp2, rTmp2, rTmp3)
	bd.OpI(isa.ADDI, rTmp2, rTmp2, 1)
	bd.St(rTmp2, isa.R0, prog.DataBase+resultSlot)
}

// FuncOpts shapes a generated worker function.
type FuncOpts struct {
	// Decisions is the number of param-controlled diamonds in the body.
	Decisions []Param
	// Nested[i], when present, nests a second-level diamond inside the
	// taken side of decision i.
	Nested []Param
	// Guards emits a chain of strongly fall-through checks (null/bounds
	// test analogues) before the decisions: each takes its rare side with
	// probability GuardProb/1000 into a two-instruction fixup that rejoins
	// immediately. Guard-heavy bodies give a function the branch density
	// of real hot loops and create BBB set contention at scale.
	Guards    int
	GuardProb Param
	// Arrays to touch on the two sides of each diamond (byte addr, words).
	ArrayA, ArrayB int64
	ArrayWords     int64
	// ALUWork scales straight-line work per diamond side.
	ALUWork int
	// FP adds a floating-point kernel on the A side.
	FP bool
	// Callees are invoked once per iteration, each gated by its Gate
	// param so per-phase call mixes differ.
	Callees []Callee
	// IterParam is the per-call iteration count parameter.
	IterParam Param
	// PreStore, when set, copies a parameter into a data word before the
	// gated calls each iteration (e.g. a recursion depth for a callee).
	PreStore *PreStore
}

// PreStore names a per-iteration parameter-to-memory copy.
type PreStore struct {
	From Param
	To   int64
}

// Callee is a gated call site inside a worker.
type Callee struct {
	Fn   *prog.Func
	Gate Param // call happens when rand < gate (gate=1000 means always)
}

// Worker builds a standard worker function: a stack frame, an iteration
// loop driven by IterParam, a chain of param-controlled diamonds with
// array/ALU/FP work on each side, and gated calls to other functions.
func (w *W) Worker(name string, o FuncOpts) *prog.Func {
	bd := w.BD
	fn := bd.Func(name)

	frame := int64(32)
	// Prologue.
	bd.OpI(isa.ADDI, isa.RSP, isa.RSP, -frame)
	bd.St(isa.RRA, isa.RSP, 0)
	w.LoadParam(rTmp0, o.IterParam)
	bd.St(rTmp0, isa.RSP, 8)

	loop := bd.NewBlock()
	done := bd.NewBlock()
	bd.Goto(loop)

	bd.SetBlock(loop)
	bd.Ld(rTmp0, isa.RSP, 8)
	body := bd.NewBlock()
	bd.Branch(isa.BEQ, rTmp0, isa.R0, done, body)

	bd.SetBlock(body)
	bd.OpI(isa.ADDI, rTmp0, rTmp0, -1)
	bd.St(rTmp0, isa.RSP, 8)

	// Guard chain.
	for g := 0; g < o.Guards; g++ {
		fixup := bd.NewBlock()
		cont := bd.NewBlock()
		w.BranchOnParam(o.GuardProb, fixup, cont)
		bd.SetBlock(fixup)
		bd.OpI(isa.XORI, rTmp3, rTmp3, int64(g)+1)
		w.Accumulate()
		bd.Goto(cont)
		bd.SetBlock(cont)
		bd.OpI(isa.ADDI, rTmp2, rTmp2, int64(g)|1)
	}

	// Decision diamonds.
	for i, p := range o.Decisions {
		takenB := bd.NewBlock()
		fallB := bd.NewBlock()
		joinB := bd.NewBlock()
		w.BranchOnParam(p, takenB, fallB)

		bd.SetBlock(takenB)
		w.ArrayTouch(o.ArrayA, o.ArrayWords, o.ALUWork)
		if o.FP && i == 0 {
			w.FPWork(4 + o.ALUWork)
		}
		if i < len(o.Nested) {
			// A second-level diamond nested on the taken side: it
			// executes a fraction of the time, so its branch may fail to
			// reach BBB candidacy even when the surrounding region is
			// hot — the artifact temperature inference recovers.
			subT := bd.NewBlock()
			subF := bd.NewBlock()
			subJ := bd.NewBlock()
			w.BranchOnParam(o.Nested[i], subT, subF)
			bd.SetBlock(subT)
			w.ArrayTouch(o.ArrayA, o.ArrayWords, 1)
			w.Accumulate()
			bd.Goto(subJ)
			bd.SetBlock(subF)
			bd.OpI(isa.ADDI, rTmp3, rTmp3, 7)
			w.Accumulate()
			bd.Goto(subJ)
			bd.SetBlock(subJ)
		}
		w.Accumulate()
		bd.Goto(joinB)

		bd.SetBlock(fallB)
		w.ArrayTouch(o.ArrayB, o.ArrayWords, o.ALUWork+2)
		w.Accumulate()
		bd.Goto(joinB)

		bd.SetBlock(joinB)
	}

	if o.PreStore != nil {
		w.LoadParam(rTmp1, o.PreStore.From)
		bd.St(rTmp1, isa.R0, o.PreStore.To)
	}

	// Gated calls.
	for _, c := range o.Callees {
		callB := bd.NewBlock()
		skipB := bd.NewBlock()
		w.BranchOnParam(c.Gate, callB, skipB)
		bd.SetBlock(callB)
		cont := bd.NewBlock()
		bd.Call(c.Fn, cont)
		bd.SetBlock(cont)
		bd.Goto(skipB)
		bd.SetBlock(skipB)
	}
	bd.Goto(loop)

	// Epilogue.
	bd.SetBlock(done)
	bd.Ld(isa.RRA, isa.RSP, 0)
	bd.OpI(isa.ADDI, isa.RSP, isa.RSP, frame)
	bd.Ret()
	return fn
}

// ColdBody builds a straight-line leaf function of roughly `size`
// instructions with a couple of param-controlled diamonds and array
// traffic, ending in ret. Cold bodies are invoked sporadically (gates
// below the Hot-arc weight threshold), so their branches never reach BBB
// candidacy: they are the dynamic cold tail that keeps package coverage
// below 100%, like the paper's benchmarks.
func (w *W) ColdBody(name string, size int, arr, words int64) *prog.Func {
	bd := w.BD
	fn := bd.Func(name)
	d1 := w.NewParam(500)
	emitted := 0
	for emitted < size {
		t := bd.NewBlock()
		f := bd.NewBlock()
		j := bd.NewBlock()
		w.BranchOnParam(d1, t, f)
		bd.SetBlock(t)
		w.ArrayTouch(arr, words, 3)
		w.Accumulate()
		bd.Goto(j)
		bd.SetBlock(f)
		w.ArrayTouch(arr, words, 5)
		w.Accumulate()
		bd.Goto(j)
		bd.SetBlock(j)
		for k := 0; k < size/4 && emitted+40+k < size; k++ {
			bd.OpI(isa.ADDI, rTmp1, rTmp1, int64(k)+1)
		}
		emitted += 40 + size/4
	}
	bd.Ret()
	return fn
}

// Bulk generates n never-hot functions of roughly size instructions each —
// the static mass of real binaries (error paths, rarely used features,
// library code). It returns an init function that calls each once, so a
// program can pay the realistic one-time cold startup cost.
func (w *W) Bulk(prefix string, n, size int, arr, words int64) *prog.Func {
	fns := make([]*prog.Func, n)
	for i := range fns {
		fns[i] = w.ColdBody(fmt.Sprintf("%s%d", prefix, i), size, arr, words)
	}
	bd := w.BD
	init := bd.Func(prefix + "_init")
	bd.OpI(isa.ADDI, isa.RSP, isa.RSP, -16)
	bd.St(isa.RRA, isa.RSP, 0)
	for _, f := range fns {
		cont := bd.NewBlock()
		bd.Call(f, cont)
		bd.SetBlock(cont)
	}
	bd.Ld(isa.RRA, isa.RSP, 0)
	bd.OpI(isa.ADDI, isa.RSP, isa.RSP, 16)
	bd.Ret()
	return init
}

// Recursive builds a self-recursive function: it decrements a depth word
// in the data segment, performs diamond work, and calls itself while the
// counter is positive. The caller stores the desired depth into depthAddr
// before calling. Self-recursion forces the function to be a package root
// (§3.3.2) and exercises the recursion re-entry path.
func (w *W) Recursive(name string, depthAddr int64, decision Param, arr, arrWords int64) *prog.Func {
	bd := w.BD
	fn := bd.Func(name)

	bd.OpI(isa.ADDI, isa.RSP, isa.RSP, -16)
	bd.St(isa.RRA, isa.RSP, 0)
	bd.Ld(rTmp0, isa.R0, depthAddr)
	base := bd.NewBlock()
	recurse := bd.NewBlock()
	out := bd.NewBlock()
	bd.Branch(isa.BLT, isa.R0, rTmp0, recurse, base)

	bd.SetBlock(recurse)
	bd.OpI(isa.ADDI, rTmp0, rTmp0, -1)
	bd.St(rTmp0, isa.R0, depthAddr)
	tk := bd.NewBlock()
	fl := bd.NewBlock()
	jn := bd.NewBlock()
	w.BranchOnParam(decision, tk, fl)
	bd.SetBlock(tk)
	w.ArrayTouch(arr, arrWords, 2)
	w.Accumulate()
	bd.Goto(jn)
	bd.SetBlock(fl)
	bd.OpI(isa.XORI, rTmp3, rTmp3, 0x33)
	w.Accumulate()
	bd.Goto(jn)
	bd.SetBlock(jn)
	cont := bd.NewBlock()
	bd.Call(fn, cont)
	bd.SetBlock(cont)
	bd.Goto(out)

	bd.SetBlock(base)
	w.ArrayTouch(arr, arrWords, 1)
	w.Accumulate()
	bd.Goto(out)

	bd.SetBlock(out)
	bd.Ld(isa.RRA, isa.RSP, 0)
	bd.OpI(isa.ADDI, isa.RSP, isa.RSP, 16)
	bd.Ret()
	return fn
}

// Dispatcher builds an interpreter-style command loop (the paper's perl
// example): each iteration draws a command and dispatches through a
// compare chain to one of the handlers; the selection thresholds are
// parameters, so phases shift the command mix. All handlers share this
// single root function.
func (w *W) Dispatcher(name string, iters Param, cuts []Param, handlers []*prog.Func) *prog.Func {
	if len(cuts) != len(handlers)-1 {
		panic("workload: Dispatcher needs len(cuts) == len(handlers)-1")
	}
	bd := w.BD
	fn := bd.Func(name)

	bd.OpI(isa.ADDI, isa.RSP, isa.RSP, -32)
	bd.St(isa.RRA, isa.RSP, 0)
	w.LoadParam(rTmp0, iters)
	bd.St(rTmp0, isa.RSP, 8)
	loop := bd.NewBlock()
	done := bd.NewBlock()
	bd.Goto(loop)

	bd.SetBlock(loop)
	bd.Ld(rTmp0, isa.RSP, 8)
	body := bd.NewBlock()
	bd.Branch(isa.BEQ, rTmp0, isa.R0, done, body)

	bd.SetBlock(body)
	bd.OpI(isa.ADDI, rTmp0, rTmp0, -1)
	bd.St(rTmp0, isa.RSP, 8)
	w.Rand(rTmp1)
	bd.St(rTmp1, isa.RSP, 16) // command selector survives handler calls

	after := bd.NewBlock()
	for i, h := range handlers {
		callB := bd.NewBlock()
		var nextB *prog.Block
		if i < len(cuts) {
			nextB = bd.NewBlock()
			bd.Ld(rTmp1, isa.RSP, 16)
			w.LoadParam(rTmp2, cuts[i])
			bd.Branch(isa.BLT, rTmp1, rTmp2, callB, nextB)
		} else {
			bd.Goto(callB)
		}
		bd.SetBlock(callB)
		cont := bd.NewBlock()
		bd.Call(h, cont)
		bd.SetBlock(cont)
		bd.Goto(after)
		if nextB != nil {
			bd.SetBlock(nextB)
		}
	}
	bd.SetBlock(after)
	bd.Goto(loop)

	bd.SetBlock(done)
	bd.Ld(isa.RRA, isa.RSP, 0)
	bd.OpI(isa.ADDI, isa.RSP, isa.RSP, 32)
	bd.Ret()
	return fn
}

// session caches the work-item wrapper built for a driver.
type session struct {
	fn *prog.Func
	it Param
}

// DriverBurst returns the phase steps that run `total` iterations of drv
// the way real applications do: a session function (created once per
// driver) owns a work-item loop that re-invokes the driver in short
// bursts. Packages root at the session and partially inline the driver, so
// a driver-level cold exit strands execution for at most one burst — the
// materialized return address brings control back into the package when
// the original driver returns.
func (w *W) DriverBurst(drvIt Param, total int64, drv *prog.Func) []PhaseStep {
	const (
		burst     = 18 // driver iterations per work item
		sessCalls = 3  // session launches per phase
	)
	s, ok := w.sessions[drv]
	if !ok {
		it := w.NewParam(0)
		always := w.NewParam(1000)
		fn := w.Worker(drv.Name+"_sess", FuncOpts{
			Callees:   []Callee{{Fn: drv, Gate: always}},
			IterParam: it,
		})
		s = session{fn: fn, it: it}
		w.sessions[drv] = s
	}
	perSess := total / (burst * sessCalls)
	if perSess < 1 {
		perSess = 1
	}
	steps := []PhaseStep{SetP(drvIt, burst)}
	for i := 0; i < sessCalls; i++ {
		steps = append(steps, SetP(s.it, perSess), CallF(s.fn))
	}
	return steps
}

// PhaseStep is one action main performs in a phase: set a parameter or
// call a function.
type PhaseStep struct {
	Set   *Param
	Value int64
	Call  *prog.Func
}

// SetP builds a parameter-setting step.
func SetP(p Param, v int64) PhaseStep { return PhaseStep{Set: &p, Value: v} }

// CallF builds a call step.
func CallF(f *prog.Func) PhaseStep { return PhaseStep{Call: f} }

// MainOf builds the program's main function from a phase script: each
// phase's steps run in order.
func (w *W) MainOf(phases [][]PhaseStep) {
	bd := w.BD
	bd.Func("main")
	bd.Main()
	for _, steps := range phases {
		for _, s := range steps {
			switch {
			case s.Set != nil:
				bd.Li(rTmp0, s.Value)
				bd.St(rTmp0, isa.R0, s.Set.addr())
			case s.Call != nil:
				cont := bd.NewBlock()
				bd.Call(s.Call, cont)
				bd.SetBlock(cont)
			default:
				panic(fmt.Sprintf("workload: empty phase step %+v", s))
			}
		}
	}
	bd.Halt()
}
