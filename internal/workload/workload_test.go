package workload

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/prog"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("suite has %d benchmarks, want 12", len(all))
	}
	ordered := Ordered()
	if len(ordered) != 12 {
		t.Fatalf("Ordered() returned %d, want 12", len(ordered))
	}
	if ordered[0].Name != "go" || ordered[len(ordered)-1].Name != "mpeg2dec" {
		t.Error("Ordered() not in Table 1 order")
	}
	totalInputs := 0
	for _, b := range all {
		totalInputs += len(b.Inputs)
		if b.Paper == "" {
			t.Errorf("%s missing paper row", b.Name)
		}
	}
	if totalInputs != 19 {
		t.Errorf("suite has %d inputs, want 19 (Table 1 rows)", totalInputs)
	}
}

func TestByNameAndInput(t *testing.T) {
	b, err := ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.InputByName("A"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.InputByName("Z"); err == nil {
		t.Error("unknown input should error")
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestEveryBenchmarkBuildsVerifiesAndRuns(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			in := b.Inputs[0]
			in.Scale = 1
			p := b.Build(in)
			if err := p.Verify(); err != nil {
				t.Fatalf("verify: %v", err)
			}
			img, err := p.Linearize()
			if err != nil {
				t.Fatal(err)
			}
			m := cpu.NewMachine(img)
			if err := m.Run(50_000_000, nil); err != nil {
				t.Fatalf("run: %v", err)
			}
			if m.InstCount < 100_000 {
				t.Errorf("only %d instructions executed; too small to profile", m.InstCount)
			}
			if _, stores := m.DataHash(); stores == 0 {
				t.Error("program produced no observable data-segment effects")
			}
		})
	}
}

func TestBuildIsDeterministic(t *testing.T) {
	b, _ := ByName("gzip")
	in := b.Inputs[0]
	p1 := b.Build(in)
	p2 := b.Build(in)
	img1, err := p1.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	img2, err := p2.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	if len(img1.Code) != len(img2.Code) {
		t.Fatal("two builds differ in size")
	}
	for i := range img1.Code {
		if img1.Code[i] != img2.Code[i] {
			t.Fatalf("two builds differ at slot %d", i)
		}
	}
}

func TestSeedChangesDynamicsNotStructure(t *testing.T) {
	b, _ := ByName("mcf")
	inA := b.Inputs[0]
	inB := inA
	inB.Seed = inA.Seed + 12345
	p1, p2 := b.Build(inA), b.Build(inB)
	if p1.NumInsts() != p2.NumInsts() {
		t.Error("seed changed static structure")
	}
	img1, _ := p1.Linearize()
	img2, _ := p2.Linearize()
	m1, m2 := cpu.NewMachine(img1), cpu.NewMachine(img2)
	if err := m1.Run(50_000_000, nil); err != nil {
		t.Fatal(err)
	}
	if err := m2.Run(50_000_000, nil); err != nil {
		t.Fatal(err)
	}
	h1, _ := m1.DataHash()
	h2, _ := m2.DataHash()
	if h1 == h2 {
		t.Error("different seeds produced identical data effects")
	}
}

func TestScaleScalesWork(t *testing.T) {
	b, _ := ByName("m88ksim")
	in := b.Inputs[0]
	in.Scale = 1
	p1 := b.Build(in)
	in.Scale = 2
	p2 := b.Build(in)
	img1, _ := p1.Linearize()
	img2, _ := p2.Linearize()
	m1, m2 := cpu.NewMachine(img1), cpu.NewMachine(img2)
	if err := m1.Run(100_000_000, nil); err != nil {
		t.Fatal(err)
	}
	if err := m2.Run(100_000_000, nil); err != nil {
		t.Fatal(err)
	}
	if m2.InstCount < m1.InstCount*3/2 {
		t.Errorf("scale 2 ran %d vs %d insts; expected meaningful growth", m2.InstCount, m1.InstCount)
	}
}

func TestDSLPrimitives(t *testing.T) {
	w := NewW()
	bd := w.BD
	p1 := w.NewParam(500)
	arr := w.NewArray(64)
	fn := bd.Func("main")
	bd.Main()
	_ = fn
	tk := bd.NewBlock()
	fl := bd.NewBlock()
	w.BranchOnParam(p1, tk, fl)
	bd.SetBlock(tk)
	w.ArrayTouch(arr, 64, 3)
	w.Accumulate()
	bd.Halt()
	bd.SetBlock(fl)
	w.FPWork(3)
	bd.Halt()
	p := w.Finish(99)

	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	img, err := p.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	m := cpu.NewMachine(img)
	if err := m.Run(10_000, nil); err != nil {
		t.Fatal(err)
	}
	// The RNG state must have advanced from the seed.
	v, _ := m.Mem.Load(prog.DataBase + rngSlot)
	if v == 99 {
		t.Error("LCG did not advance")
	}
}

func TestWorkerShape(t *testing.T) {
	w := NewW()
	arr := w.NewArray(64)
	d := w.NewParam(500)
	g := w.NewParam(200)
	guard := w.NewParam(15)
	leaf := w.ColdBody("leaf", 100, arr, 64)
	it := w.NewParam(5)
	fn := w.Worker("wk", FuncOpts{
		Decisions: []Param{d},
		Nested:    []Param{w.NewParam(300)},
		Guards:    4, GuardProb: guard,
		ArrayA: arr, ArrayB: arr, ArrayWords: 64, ALUWork: 2,
		Callees:   []Callee{{Fn: leaf, Gate: g}},
		IterParam: it,
	})
	bd := w.BD
	bd.Func("main")
	bd.Main()
	cont := bd.NewBlock()
	bd.Call(fn, cont)
	bd.SetBlock(cont)
	bd.Halt()
	p := w.Finish(3)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	// Count conditional branch blocks in the worker: loop + 4 guards +
	// 1 decision + 1 nested + 1 gate = 8.
	n := 0
	for _, b := range fn.Blocks {
		if b.Kind == prog.TermBranch {
			n++
		}
	}
	if n != 8 {
		t.Errorf("worker branch blocks = %d, want 8", n)
	}
	img, err := p.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	m := cpu.NewMachine(img)
	if err := m.Run(1_000_000, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecursiveTerminates(t *testing.T) {
	w := NewW()
	arr := w.NewArray(64)
	depth := w.NewArray(1)
	rec := w.Recursive("r", depth, w.NewParam(500), arr, 64)
	bd := w.BD
	bd.Func("main")
	bd.Main()
	bd.Li(isa.Reg(1), 7)
	bd.St(isa.Reg(1), isa.R0, depth)
	cont := bd.NewBlock()
	bd.Call(rec, cont)
	bd.SetBlock(cont)
	bd.Halt()
	p := w.Finish(5)
	img, err := p.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	m := cpu.NewMachine(img)
	if err := m.Run(100_000, nil); err != nil {
		t.Fatalf("recursion did not terminate: %v", err)
	}
}

func TestDispatcherSelectsByParams(t *testing.T) {
	w := NewW()
	arr := w.NewArray(64)
	mkLeaf := func(name string, slot int64) *prog.Func {
		bd := w.BD
		fn := bd.Func(name)
		bd.Li(rTmp0, 1)
		bd.Ld(rTmp1, isa.R0, arr+slot*8)
		bd.Op3(isa.ADD, rTmp1, rTmp1, rTmp0)
		bd.St(rTmp1, isa.R0, arr+slot*8)
		bd.Ret()
		return fn
	}
	h1 := mkLeaf("h1", 0)
	h2 := mkLeaf("h2", 1)
	cut := w.NewParam(1000) // always select h1
	iters := w.NewParam(200)
	disp := w.Dispatcher("disp", iters, []Param{cut}, []*prog.Func{h1, h2})
	bd := w.BD
	bd.Func("main")
	bd.Main()
	cont := bd.NewBlock()
	bd.Call(disp, cont)
	bd.SetBlock(cont)
	bd.Halt()
	p := w.Finish(11)
	img, err := p.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	m := cpu.NewMachine(img)
	if err := m.Run(1_000_000, nil); err != nil {
		t.Fatal(err)
	}
	c1, _ := m.Mem.Load(prog.DataBase + arrayBase + 0)
	c2, _ := m.Mem.Load(prog.DataBase + arrayBase + 8)
	if c1 != 200 || c2 != 0 {
		t.Errorf("dispatch counts = %d/%d, want 200/0", c1, c2)
	}
}
