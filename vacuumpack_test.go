package vacuumpack

import (
	"fmt"
	"strings"
	"testing"
)

// TestFacadeEndToEnd drives the whole pipeline purely through the public
// API, the way a downstream user would.
func TestFacadeEndToEnd(t *testing.T) {
	bench, err := Benchmark("gzip")
	if err != nil {
		t.Fatal(err)
	}
	in := bench.Inputs[0]
	in.Scale = 1
	program := bench.Build(in)

	outcome, err := Run(ScaledConfig(), program)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := outcome.Evaluate(DefaultMachine(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Equivalent {
		t.Fatal("packed program diverged")
	}
	if ev.Coverage < 0.5 || ev.Speedup < 0.95 {
		t.Errorf("coverage %.2f speedup %.3f out of expected range", ev.Coverage, ev.Speedup)
	}
}

func TestFacadeAssembleAndMachine(t *testing.T) {
	p, err := Assemble(`
.func main
.main
  li r1, 6
  li r2, 7
  mul r3, r1, r2
  st r3, 1048576(r0)
  halt
`)
	if err != nil {
		t.Fatal(err)
	}
	img, err := p.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(img)
	if err := m.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if m.IntRegs[3] != 42 {
		t.Errorf("r3 = %d, want 42", m.IntRegs[3])
	}
	if !strings.Contains(Disassemble(p), "mul r3, r1, r2") {
		t.Error("disassembly missing instruction")
	}
	stats, _, err := RunTimed(DefaultMachine(), img, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Insts != 5 {
		t.Errorf("timed insts = %d, want 5", stats.Insts)
	}
}

func TestFacadeBuilderAndDetector(t *testing.T) {
	bd := NewBuilder()
	bd.Func("main")
	bd.Main()
	bd.Halt()
	if err := bd.P.Verify(); err != nil {
		t.Fatal(err)
	}

	db := NewPhaseDB()
	det := NewDetector(DetectorConfig{
		Sets: 16, Ways: 4, CounterBits: 9, CandidateThreshold: 16,
		RefreshInterval: 256, ClearInterval: 4096, HDCBits: 8, HDCDec: 2, HDCInc: 1,
	}, func(h HotSpot) { db.Record(h) })
	for i := 0; i < 4000; i++ {
		det.Branch(64, true)
		det.Branch(72, i%3 == 0)
	}
	if len(db.Phases) != 1 {
		t.Errorf("phases = %d, want 1", len(db.Phases))
	}
}

func TestFacadeTraceBaseline(t *testing.T) {
	bench, err := Benchmark("li")
	if err != nil {
		t.Fatal(err)
	}
	in := bench.Inputs[0]
	in.Scale = 1
	p := bench.Build(in)
	img, err := p.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	db := NewPhaseDB()
	det := NewDetector(ScaledConfig().Detector, func(h HotSpot) { db.Record(h) })
	m := NewMachine(img)
	if err := m.Run(0, func(si *StepInfo) {
		if si.Inst.Op.IsCondBranch() {
			det.Branch(si.PC, si.Taken)
		}
	}); err != nil {
		t.Fatal(err)
	}
	res, err := BuildTraces(TraceConfig{}, p, img, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) == 0 {
		t.Error("no traces built through the facade")
	}
}

func TestFacadeSuite(t *testing.T) {
	if len(Benchmarks()) != 12 {
		t.Error("suite incomplete")
	}
	if len(Variants()) != 4 {
		t.Error("variants incomplete")
	}
	if _, err := Benchmark("nope"); err == nil {
		t.Error("unknown benchmark should error")
	}
}

// ExampleRun documents the happy path in godoc.
func ExampleRun() {
	bench, _ := Benchmark("m88ksim")
	in := bench.Inputs[0]
	in.Scale = 1
	outcome, err := Run(ScaledConfig(), bench.Build(in))
	if err != nil {
		fmt.Println("pipeline:", err)
		return
	}
	ev, err := outcome.Evaluate(DefaultMachine(), 0)
	if err != nil {
		fmt.Println("evaluate:", err)
		return
	}
	fmt.Println("equivalent:", ev.Equivalent)
	// Output: equivalent: true
}
