// Benchmarks that regenerate the paper's evaluation, one per table and
// figure (run `go test -bench=. -benchmem`), plus ablation benches for the
// design choices DESIGN.md calls out. Custom metrics carry the reproduced
// numbers: coverage%, speedup-x, growth%, selected%.
//
// The full-suite regeneration lives in cmd/vpbench; these benches use
// representative subsets so the whole run stays in benchmark-friendly time.
package vacuumpack

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/hsd"
	"repro/internal/phasedb"
	"repro/internal/prog"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

// buildInput returns a freshly built program for a benchmark's first input
// at scale 1.
func buildInput(b *testing.B, name string) *prog.Program {
	b.Helper()
	bench, err := workload.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	in := bench.Inputs[0]
	in.Scale = 1
	return bench.Build(in)
}

// figureSubset is the representative benchmark set used by the per-figure
// benches: a linking-dominated shape (m88ksim), a shared-dispatcher shape
// (perl), a contention shape (vpr) and a disjoint-phases shape (ijpeg).
var figureSubset = []string{"m88ksim", "perl", "vpr", "ijpeg"}

// BenchmarkTable1Workloads measures building and functionally executing
// each workload — the substrate cost under everything else (Table 1).
func BenchmarkTable1Workloads(b *testing.B) {
	for _, bench := range workload.Ordered() {
		b.Run(bench.Name, func(b *testing.B) {
			var insts uint64
			for i := 0; i < b.N; i++ {
				p := buildInput(b, bench.Name)
				img, err := p.Linearize()
				if err != nil {
					b.Fatal(err)
				}
				m := cpu.NewMachine(img)
				if err := m.Run(0, nil); err != nil {
					b.Fatal(err)
				}
				insts = m.InstCount
			}
			b.ReportMetric(float64(insts), "dyninsts")
		})
	}
}

// BenchmarkTable2Machine measures the cycle-level timing model's
// simulation throughput on the Table 2 configuration.
func BenchmarkTable2Machine(b *testing.B) {
	p := buildInput(b, "mcf")
	img, err := p.Linearize()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var total uint64
	for i := 0; i < b.N; i++ {
		stats, _, err := cpu.RunTimed(cpu.DefaultConfig(), img, 0)
		if err != nil {
			b.Fatal(err)
		}
		total += stats.Insts
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "simulated-insts/s")
}

// pipelineOnce runs the full pipeline + evaluation for one benchmark and
// variant, reporting coverage and speedup.
func pipelineOnce(b *testing.B, name string, v core.Variant) *core.Evaluation {
	b.Helper()
	cfg := v.Apply(core.ScaledConfig())
	out, err := core.Run(cfg, buildInput(b, name))
	if err != nil {
		b.Fatal(err)
	}
	ev, err := out.Evaluate(cpu.DefaultConfig(), 0)
	if err != nil {
		b.Fatal(err)
	}
	if !ev.Equivalent {
		b.Fatalf("%s/%s: packed program diverged", name, v.Name())
	}
	return ev
}

// BenchmarkFigure8Coverage regenerates Figure 8's bars (package coverage
// under the four configurations) for the representative subset.
func BenchmarkFigure8Coverage(b *testing.B) {
	for _, name := range figureSubset {
		for _, v := range core.Variants() {
			v := v
			b.Run(name+"/"+v.Name(), func(b *testing.B) {
				var cov float64
				for i := 0; i < b.N; i++ {
					cov = pipelineOnce(b, name, v).Coverage
				}
				b.ReportMetric(cov*100, "coverage%")
			})
		}
	}
}

// BenchmarkTable3Expansion regenerates Table 3 (code growth, selected
// fraction, replication) under the full configuration.
func BenchmarkTable3Expansion(b *testing.B) {
	for _, name := range figureSubset {
		b.Run(name, func(b *testing.B) {
			var growth, selected, repl float64
			for i := 0; i < b.N; i++ {
				out, err := core.Run(core.ScaledConfig(), buildInput(b, name))
				if err != nil {
					b.Fatal(err)
				}
				growth = out.Pack.CodeGrowth()
				selected = out.Pack.SelectedFraction()
				repl = out.Pack.Replication()
			}
			b.ReportMetric(growth*100, "growth%")
			b.ReportMetric(selected*100, "selected%")
			b.ReportMetric(repl, "replication-x")
		})
	}
}

// BenchmarkFigure9Categories regenerates the Figure 9 branch taxonomy.
func BenchmarkFigure9Categories(b *testing.B) {
	for _, name := range figureSubset {
		b.Run(name, func(b *testing.B) {
			var cz phasedb.Categorization
			for i := 0; i < b.N; i++ {
				p := buildInput(b, name)
				img, err := p.Linearize()
				if err != nil {
					b.Fatal(err)
				}
				db, _, err := core.Profile(core.ScaledConfig(), img, nil)
				if err != nil {
					b.Fatal(err)
				}
				cz = db.Categorize()
			}
			b.ReportMetric(cz.Fraction(phasedb.MultiHigh)*100, "multihigh%")
			b.ReportMetric(cz.Fraction(phasedb.MultiSame)*100, "multisame%")
			b.ReportMetric(cz.Fraction(phasedb.UniqueBiased)*100, "uniquebiased%")
		})
	}
}

// BenchmarkFigure10Speedup regenerates Figure 10 (speedup from relayout and
// rescheduling) for the representative subset, both-features configuration
// against the no-feature one.
func BenchmarkFigure10Speedup(b *testing.B) {
	for _, name := range figureSubset {
		for _, v := range core.Variants() {
			v := v
			b.Run(name+"/"+v.Name(), func(b *testing.B) {
				var sp float64
				for i := 0; i < b.N; i++ {
					sp = pipelineOnce(b, name, v).Speedup
				}
				b.ReportMetric(sp, "speedup-x")
			})
		}
	}
}

// BenchmarkAblationBBBSize sweeps the Branch Behavior Buffer geometry: the
// smaller the table, the more hot branches are lost to contention and the
// harder region identification must work (DESIGN.md §5).
func BenchmarkAblationBBBSize(b *testing.B) {
	for _, sets := range []int{16, 64, 512} {
		b.Run(map[int]string{16: "sets16", 64: "sets64", 512: "sets512"}[sets], func(b *testing.B) {
			var cov float64
			for i := 0; i < b.N; i++ {
				cfg := core.ScaledConfig()
				cfg.Detector.Sets = sets
				out, err := core.Run(cfg, buildInput(b, "vpr"))
				if err != nil {
					// A BBB too small for the hot working set detects no
					// usable phases at all — coverage zero is the result,
					// not a harness failure.
					cov = 0
					continue
				}
				ev, err := out.Evaluate(cpu.DefaultConfig(), 0)
				if err != nil {
					b.Fatal(err)
				}
				cov = ev.Coverage
			}
			b.ReportMetric(cov*100, "coverage%")
		})
	}
}

// BenchmarkAblationGrowth sweeps MAX_BLOCKS, the heuristic growth budget
// (the paper fixes it at 1).
func BenchmarkAblationGrowth(b *testing.B) {
	for _, mb := range []int{0, 1, 4} {
		b.Run(map[int]string{0: "max0", 1: "max1", 4: "max4"}[mb], func(b *testing.B) {
			var cov float64
			for i := 0; i < b.N; i++ {
				cfg := core.ScaledConfig()
				cfg.Region.MaxGrowBlocks = mb
				out, err := core.Run(cfg, buildInput(b, "twolf"))
				if err != nil {
					b.Fatal(err)
				}
				ev, err := out.Evaluate(cpu.DefaultConfig(), 0)
				if err != nil {
					b.Fatal(err)
				}
				cov = ev.Coverage
			}
			b.ReportMetric(cov*100, "coverage%")
		})
	}
}

// BenchmarkAblationOrdering compares the paper's rank-driven package
// ordering search against first-come ordering (MaxExhaustiveOrder=0
// disables the permutation search).
func BenchmarkAblationOrdering(b *testing.B) {
	for _, exhaustive := range []bool{false, true} {
		name := "firstcome"
		if exhaustive {
			name = "ranksearch"
		}
		b.Run(name, func(b *testing.B) {
			var cov float64
			for i := 0; i < b.N; i++ {
				cfg := core.ScaledConfig()
				if !exhaustive {
					cfg.Pack.MaxExhaustiveOrder = 0
				}
				out, err := core.Run(cfg, buildInput(b, "vortex"))
				if err != nil {
					b.Fatal(err)
				}
				ev, err := out.Evaluate(cpu.DefaultConfig(), 0)
				if err != nil {
					b.Fatal(err)
				}
				cov = ev.Coverage
			}
			b.ReportMetric(cov*100, "coverage%")
		})
	}
}

// BenchmarkAblationSchedOnly separates the two §5.4 optimizations: layout
// only, scheduling only, and both.
func BenchmarkAblationSchedOnly(b *testing.B) {
	modes := []struct {
		name          string
		layout, sched bool
	}{
		{"neither", false, false},
		{"layout", true, false},
		{"schedule", false, true},
		{"both", true, true},
	}
	for _, m := range modes {
		m := m
		b.Run(m.name, func(b *testing.B) {
			var sp float64
			for i := 0; i < b.N; i++ {
				cfg := core.ScaledConfig()
				cfg.EnableLayout = m.layout
				cfg.EnableSchedule = m.sched
				out, err := core.Run(cfg, buildInput(b, "gzip"))
				if err != nil {
					b.Fatal(err)
				}
				ev, err := out.Evaluate(cpu.DefaultConfig(), 0)
				if err != nil {
					b.Fatal(err)
				}
				sp = ev.Speedup
			}
			b.ReportMetric(sp, "speedup-x")
		})
	}
}

// BenchmarkSuiteJobs measures the parallel evaluation engine: the same
// representative suite subset at one worker versus the machine's full
// worker count (report.Options.Jobs = 0). On a multi-core host the j0 run
// should approach j1 divided by the core count.
func BenchmarkSuiteJobs(b *testing.B) {
	for _, jobs := range []int{1, 0} {
		name := "j1"
		if jobs == 0 {
			name = "jmax"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := report.RunSuite(report.Options{
					Machine:       cpu.DefaultConfig(),
					Core:          core.ScaledConfig(),
					Benchmarks:    figureSubset,
					ScaleOverride: 1,
					Jobs:          jobs,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHSDThroughput measures the detector model alone on a synthetic
// branch stream.
func BenchmarkHSDThroughput(b *testing.B) {
	det := hsd.New(hsd.DefaultConfig(), func(hsd.HotSpot) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Branch(int64(i%97)*4, i%3 == 0)
	}
}

// BenchmarkPipelineEndToEnd is the headline macro-bench: the entire
// pipeline including both timed runs, per representative benchmark.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	for _, name := range figureSubset {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pipelineOnce(b, name, core.Variant{Inference: true, Linking: true})
			}
		})
	}
}

// BenchmarkBaselineTraces deploys the Dynamo-style trace baseline
// (internal/trace) from the same HSD profile and reports its coverage next
// to the package pipeline's — §2's scope argument, quantified.
func BenchmarkBaselineTraces(b *testing.B) {
	for _, name := range figureSubset {
		b.Run(name, func(b *testing.B) {
			var covTrace, covPack float64
			for i := 0; i < b.N; i++ {
				// Trace deployment.
				p := buildInput(b, name)
				img, err := p.Linearize()
				if err != nil {
					b.Fatal(err)
				}
				db, _, err := core.Profile(core.ScaledConfig(), img, nil)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := trace.Build(trace.DefaultConfig(), p, img, db); err != nil {
					b.Fatal(err)
				}
				tracedImg, err := p.Linearize()
				if err != nil {
					b.Fatal(err)
				}
				stats, _, err := cpu.RunTimed(cpu.DefaultConfig(), tracedImg, 0)
				if err != nil {
					b.Fatal(err)
				}
				covTrace = stats.PackageCoverage()

				// Package pipeline on a fresh build.
				covPack = pipelineOnce(b, name, core.Variant{Inference: true, Linking: true}).Coverage
			}
			b.ReportMetric(covTrace*100, "trace-coverage%")
			b.ReportMetric(covPack*100, "package-coverage%")
		})
	}
}

// BenchmarkAblationLaunchStrategy compares the three §3.3.4 phase-transition
// strategies on the shared-root benchmark: no linking, static package
// links (the paper's choice), and dynamic launch-point selection (the
// alternative the paper discusses and sets aside).
func BenchmarkAblationLaunchStrategy(b *testing.B) {
	modes := []struct {
		name          string
		link, dynamic bool
	}{
		{"none", false, false},
		{"staticlinks", true, false},
		{"dynamiclaunch", false, true},
	}
	for _, m := range modes {
		m := m
		b.Run(m.name, func(b *testing.B) {
			var cov, sp float64
			for i := 0; i < b.N; i++ {
				cfg := core.ScaledConfig()
				cfg.Pack.EnableLinking = m.link
				cfg.Pack.DynamicLaunch = m.dynamic
				out, err := core.Run(cfg, buildInput(b, "m88ksim"))
				if err != nil {
					b.Fatal(err)
				}
				ev, err := out.Evaluate(cpu.DefaultConfig(), 0)
				if err != nil {
					b.Fatal(err)
				}
				if !ev.Equivalent {
					b.Fatal("diverged")
				}
				cov, sp = ev.Coverage, ev.Speedup
			}
			b.ReportMetric(cov*100, "coverage%")
			b.ReportMetric(sp, "speedup-x")
		})
	}
}

// BenchmarkAblationWeightSolver compares §5.4's two weight calculations:
// the damped iterative solver against the single-pass run-time
// approximation, measured by the speedup the resulting layout achieves.
func BenchmarkAblationWeightSolver(b *testing.B) {
	for _, approx := range []bool{false, true} {
		name := "iterative"
		if approx {
			name = "approx"
		}
		b.Run(name, func(b *testing.B) {
			var sp float64
			for i := 0; i < b.N; i++ {
				cfg := core.ScaledConfig()
				cfg.ApproxWeights = approx
				out, err := core.Run(cfg, buildInput(b, "ijpeg"))
				if err != nil {
					b.Fatal(err)
				}
				ev, err := out.Evaluate(cpu.DefaultConfig(), 0)
				if err != nil {
					b.Fatal(err)
				}
				if !ev.Equivalent {
					b.Fatal("diverged")
				}
				sp = ev.Speedup
			}
			b.ReportMetric(sp, "speedup-x")
		})
	}
}
