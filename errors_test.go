package vacuumpack

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/cpu"
	"repro/internal/prog"
	"repro/internal/report"
	"repro/internal/verify"
)

// TestSentinelErrorsThroughSuite asserts the facade's sentinel errors
// survive every wrapping layer: core wraps them with %w, RunSuite wraps
// per-input and aggregates with errors.Join, and errors.Is still matches.
func TestSentinelErrorsThroughSuite(t *testing.T) {
	opts := report.Options{
		Machine:       cpu.DefaultConfig(),
		Core:          ScaledConfig(),
		Benchmarks:    []string{"gzip"},
		ScaleOverride: 1,
		Jobs:          2,
	}
	// A candidate threshold above any reachable counter value means the
	// detector never fires, so the pipeline fails with ErrNoPhases.
	opts.Core.Detector.CounterBits = 31
	opts.Core.Detector.CandidateThreshold = 1 << 30
	_, err := report.RunSuite(opts)
	if err == nil {
		t.Fatal("candidate-starved detector should fail the suite")
	}
	if !errors.Is(err, ErrNoPhases) {
		t.Errorf("errors.Is(err, vacuumpack.ErrNoPhases) = false for %v", err)
	}
	if errors.Is(err, ErrNoPackages) {
		t.Errorf("err unexpectedly matches ErrNoPackages: %v", err)
	}
}

// TestErrVerifyFailedMatchesVerifierErrors asserts the facade sentinel
// matches any verifier failure through arbitrary %w wrapping — the shape
// vpack/vpbench/vpverify rely on for their exit-code-3 paths — and that
// the structured diagnostics stay extractable from the wrapped chain.
func TestErrVerifyFailedMatchesVerifierErrors(t *testing.T) {
	p := prog.New() // no Main, no functions: cfg/main must fire
	err := verify.Program("test", p)
	if err == nil {
		t.Fatal("empty program passed verification")
	}
	wrapped := fmt.Errorf("core: post-optimization verification: %w", err)
	if !errors.Is(wrapped, ErrVerifyFailed) {
		t.Errorf("errors.Is(wrapped, vacuumpack.ErrVerifyFailed) = false for %v", wrapped)
	}
	if errors.Is(wrapped, ErrNoPhases) || errors.Is(wrapped, ErrNoPackages) {
		t.Errorf("verifier error matches an unrelated sentinel: %v", wrapped)
	}
	diags := verify.Diagnostics(wrapped)
	if len(diags) == 0 {
		t.Fatal("no diagnostics extractable from wrapped verifier error")
	}
	if diags[0].Rule != "cfg/main" {
		t.Errorf("rule = %q, want cfg/main", diags[0].Rule)
	}
}
