package vacuumpack

import (
	"errors"
	"testing"

	"repro/internal/cpu"
	"repro/internal/report"
)

// TestSentinelErrorsThroughSuite asserts the facade's sentinel errors
// survive every wrapping layer: core wraps them with %w, RunSuite wraps
// per-input and aggregates with errors.Join, and errors.Is still matches.
func TestSentinelErrorsThroughSuite(t *testing.T) {
	opts := report.Options{
		Machine:       cpu.DefaultConfig(),
		Core:          ScaledConfig(),
		Benchmarks:    []string{"gzip"},
		ScaleOverride: 1,
		Jobs:          2,
	}
	// A candidate threshold above any reachable counter value means the
	// detector never fires, so the pipeline fails with ErrNoPhases.
	opts.Core.Detector.CounterBits = 31
	opts.Core.Detector.CandidateThreshold = 1 << 30
	_, err := report.RunSuite(opts)
	if err == nil {
		t.Fatal("candidate-starved detector should fail the suite")
	}
	if !errors.Is(err, ErrNoPhases) {
		t.Errorf("errors.Is(err, vacuumpack.ErrNoPhases) = false for %v", err)
	}
	if errors.Is(err, ErrNoPackages) {
		t.Errorf("err unexpectedly matches ErrNoPackages: %v", err)
	}
}
